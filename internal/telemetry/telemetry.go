// Package telemetry provides the process-wide observability primitives the
// engine and server report through: atomic counters, gauges, and fixed-bucket
// histograms, collected in a Registry that renders the Prometheus text
// exposition format. It has no dependencies outside the standard library —
// the whole package is a few hundred lines of lock-free instruments plus a
// small exporter — so every layer of the engine can depend on it freely.
//
// All instruments are safe for concurrent use; updates are single atomic
// operations, so instrumenting a hot path costs nanoseconds. Reads (Value,
// Snapshot, WritePrometheus) may observe a histogram mid-update — the bucket
// counts, sum, and count are each individually atomic but not snapshot
// together — which is the standard tradeoff every lock-free metrics library
// makes; scrapes see values at most one observation stale.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative; negative deltas are ignored so the
// counter stays monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions (e.g.
// in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations ≤ bounds[i]; one extra implicit +Inf bucket catches the rest.
// Observe is a handful of atomic operations and is safe for concurrent use.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("telemetry: histogram bounds not strictly ascending at %d (%v, %v)",
				i, bounds[i-1], bounds[i])
		}
	}
	if math.IsInf(bounds[len(bounds)-1], 1) {
		bounds = bounds[:len(bounds)-1] // +Inf is implicit
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); linear scan beats binary search at this size
	// and keeps the hot path branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative bucket counts in Prometheus convention:
// entry i is the number of observations ≤ bounds[i], and the final entry
// (the +Inf bucket) equals Count().
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// LinearBuckets returns n bounds: start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns n bounds: start, start·factor, start·factor², ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// FloatGauge is a float64-valued gauge, stored as an atomic bit pattern so
// sets and reads never tear. It exists for gauge families whose values are
// not integral (wall-time seconds, byte estimates).
type FloatGauge struct {
	v atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// GaugeVec is a family of FloatGauges keyed by one label value (e.g. one
// gauge per shard). Children are created on first use and live for the
// registry's lifetime, so label values must be low-cardinality.
type GaugeVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*FloatGauge
}

// With returns the child gauge for the label value, creating it on first
// use.
func (v *GaugeVec) With(value string) *FloatGauge {
	v.mu.RLock()
	g, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.children[value]; ok {
		return g
	}
	g = &FloatGauge{}
	v.children[value] = g
	return g
}

// CounterVec is a family of Counters keyed by one label value (e.g. one
// counter per HTTP endpoint). Children are created on first use and live for
// the registry's lifetime, so label values must be low-cardinality.
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[value]; ok {
		return c
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

// HistogramVec is a family of Histograms keyed by one label value, sharing
// one set of bucket bounds.
type HistogramVec struct {
	label    string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating it on first
// use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[value]; ok {
		return h
	}
	h, _ = newHistogram(v.bounds) // bounds were validated at vec creation
	v.children[value] = h
	return h
}

// sortedKeys returns a map's keys in deterministic (sorted) order, for
// stable exposition output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
