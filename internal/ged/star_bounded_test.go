package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphrep/internal/dataset"
	"graphrep/internal/graph"
)

// The tentpole property: on random graph pairs, the bound cascade never
// contradicts the exact star distance — Leq ⇔ Distance ≤ τ for every τ, the
// proven interval always sandwiches the distance, and a false verdict always
// carries a lower bound above τ. This is the ground truth behind the
// engine-level guarantee that the bounded kernel cannot change any answer.
func TestBoundedKernelNeverContradictsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewStarSig(randGraph(r, 10))
		b := NewStarSig(randGraph(r, 10))
		d := a.Distance(b)
		taus := []float64{d - 1, d - 0.5, d, d + 0.5, d + 1, 0, d / 2, d * 2, -1}
		for _, tau := range taus {
			dec := a.DistanceAtMost(b, tau)
			if dec.Leq != (d <= tau) {
				t.Logf("seed=%d tau=%v d=%v: Leq=%v stage=%v", seed, tau, d, dec.Leq, dec.Stage)
				return false
			}
			if dec.Lo > d || (dec.Hi < d) {
				t.Logf("seed=%d tau=%v d=%v: interval [%v,%v] excludes d", seed, tau, d, dec.Lo, dec.Hi)
				return false
			}
			if !dec.Leq && dec.Lo <= tau {
				t.Logf("seed=%d tau=%v: false verdict without a proving bound (lo=%v)", seed, tau, dec.Lo)
				return false
			}
			if dec.Leq && dec.Hi > tau {
				t.Logf("seed=%d tau=%v: true verdict without a proving bound (hi=%v)", seed, tau, dec.Hi)
				return false
			}
			if dec.Exact() && dec.Lo != d {
				t.Logf("seed=%d: exact stage value %v != distance %v", seed, dec.Lo, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// The tier-policy contract behind the metric layer's adaptive gates: no
// (tryGreedy, tryDual) combination may change a verdict or break the
// sandwich, a disabled tier never appears as the deciding stage, and the
// dual-armed flag is set exactly when arming was permitted and reached.
func TestDistanceAtMostTiersPolicyInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewStarSig(randGraph(r, 10))
		b := NewStarSig(randGraph(r, 10))
		d := a.Distance(b)
		emblo := a.Embedding().LowerBound(b.Embedding())
		for _, tau := range []float64{d - 1, d - 0.5, d, d + 1, 0, d / 2, 2 * d} {
			for _, tryGreedy := range []bool{false, true} {
				for _, tryDual := range []bool{false, true} {
					dec := a.DistanceAtMostTiers(b, tau, emblo, tryGreedy, tryDual)
					if dec.Leq != (d <= tau) {
						t.Logf("seed=%d tau=%v d=%v greedy=%v dual=%v: Leq=%v stage=%v",
							seed, tau, d, tryGreedy, tryDual, dec.Leq, dec.Stage)
						return false
					}
					if dec.Lo > d || dec.Hi < d {
						t.Logf("seed=%d tau=%v greedy=%v dual=%v: interval [%v,%v] excludes d=%v",
							seed, tau, tryGreedy, tryDual, dec.Lo, dec.Hi, d)
						return false
					}
					if !tryGreedy && dec.Stage == StageGreedy {
						t.Logf("seed=%d tau=%v: disabled greedy tier decided", seed, tau)
						return false
					}
					if !tryDual && (dec.Stage == StageDual || dec.DualArmed) {
						t.Logf("seed=%d tau=%v: disabled dual tier armed (stage=%v)", seed, tau, dec.Stage)
						return false
					}
					if dec.Stage == StageDual && !dec.DualArmed {
						t.Logf("seed=%d tau=%v: dual abort fired without DualArmed", seed, tau)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// DistanceWarm serves cache promotions on the bounded path; it must return
// the same value as the classic Distance, which stays the kernel-off
// reference implementation.
func TestDistanceWarmMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		a := NewStarSig(randGraph(rng, 12))
		b := NewStarSig(randGraph(rng, 12))
		if got, want := a.DistanceWarm(b), a.Distance(b); got != want {
			t.Fatalf("trial %d: DistanceWarm %v != Distance %v", trial, got, want)
		}
	}
	empty := NewStarSig(mkGraph(t, nil, nil))
	if got := empty.DistanceWarm(empty); got != 0 {
		t.Errorf("empty DistanceWarm = %v, want 0", got)
	}
}

// Every cascade stage must be reachable — otherwise a bound has quietly
// become dead code and the kernel degrades to always-exact.
func TestBoundedKernelStagesFire(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	seen := make(map[Stage]int)
	for i := 0; i < 4000; i++ {
		a := NewStarSig(randGraph(rng, 12))
		b := NewStarSig(randGraph(rng, 12))
		d := a.Distance(b)
		for _, tau := range []float64{0, d / 4, d / 2, d - 1, d, d + 2, 2*d + 4} {
			seen[a.DistanceAtMost(b, tau).Stage]++
		}
	}
	// The dual stage requires assignment conflicts — rows competing for the
	// same cheap columns — inside the gated prefix of the solve, which
	// uniform random graphs almost never produce once the row-minima sum has
	// been checked. Family-structured molecule-like graphs (small label
	// alphabet, shared scaffolds, valence cap) do; sweep those until every
	// stage has been observed.
	allSeen := func() bool {
		for _, st := range []Stage{StageEmbedding, StageRowMin, StageGreedy, StageDual, StageExact} {
			if seen[st] == 0 {
				return false
			}
		}
		return true
	}
	db, err := dataset.DUDLike(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]*StarSig, db.Len())
	for i := range sigs {
		sigs[i] = NewStarSig(db.Graph(graph.ID(i)))
	}
	for i := 0; i < len(sigs) && !allSeen(); i++ {
		for j := i + 1; j < len(sigs) && !allSeen(); j++ {
			d := sigs[i].Distance(sigs[j])
			for _, tau := range []float64{math.Floor(3 * d / 4), d - 1, d - 2} {
				if tau < 0 {
					continue
				}
				seen[sigs[i].DistanceAtMost(sigs[j], tau).Stage]++
			}
		}
	}
	for _, st := range []Stage{StageEmbedding, StageRowMin, StageGreedy, StageDual, StageExact} {
		if seen[st] == 0 {
			t.Errorf("stage %v never fired across the corpus (distribution %v)", st, seen)
		}
	}
}

func TestDistanceAtMostEmpty(t *testing.T) {
	empty := NewStarSig(mkGraph(t, nil, nil))
	if dec := empty.DistanceAtMost(empty, 0); !dec.Leq || !dec.Exact() {
		t.Errorf("empty vs empty at tau=0: %+v", dec)
	}
	if dec := empty.DistanceAtMost(empty, -1); dec.Leq {
		t.Errorf("empty vs empty at tau=-1: %+v", dec)
	}
}

// Distance and DistanceAtMost run on pooled scratch: steady state must not
// allocate. This is the kernel-level half of the BenchmarkStarDistance
// allocs/op = 0 acceptance bar (the graph-level StarDistance still pays the
// one-off star decomposition).
func TestStarSigDistanceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(61))
	a := NewStarSig(randGraph(rng, 20))
	b := NewStarSig(randGraph(rng, 20))
	d := a.Distance(b) // warm the pool
	if allocs := testing.AllocsPerRun(100, func() { a.Distance(b) }); allocs != 0 {
		t.Errorf("StarSig.Distance allocates %v per op after warmup, want 0", allocs)
	}
	for _, tau := range []float64{0, d / 2, d, 2 * d} {
		tau := tau
		if allocs := testing.AllocsPerRun(100, func() { a.DistanceAtMost(b, tau) }); allocs != 0 {
			t.Errorf("DistanceAtMost(τ=%v) allocates %v per op after warmup, want 0", tau, allocs)
		}
	}
}

var sinkDecision Decision

func BenchmarkDistanceAtMost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s1 := NewStarSig(randGraph(rng, 26))
	s2 := NewStarSig(randGraph(rng, 26))
	d := s1.Distance(s2)
	for _, tc := range []struct {
		name string
		tau  float64
	}{
		{"prune-far", d / 4},
		{"prune-near", d - 1},
		{"exact-at", d},
		{"accept-far", math.Ceil(d * 2)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkDecision = s1.DistanceAtMost(s2, tc.tau)
			}
		})
	}
}
