package ged

import (
	"container/heap"
	"errors"

	"graphrep/internal/graph"
)

// ErrBudget is returned by Exact when the search exceeds its node budget.
var ErrBudget = errors.New("ged: exact search budget exceeded")

// Exact computes the exact graph edit distance between g1 and g2 under costs
// c using A* search over vertex mappings. The search expands at most budget
// states (0 means a generous default); if the budget is exhausted before an
// optimal mapping is proven, Exact returns ErrBudget. Exact GED is NP-hard,
// so keep the inputs small (≲ 10 vertices) or pass a real budget.
func Exact(g1, g2 *graph.Graph, c Costs, budget int) (float64, error) {
	d, _, err := ExactMapping(g1, g2, c, budget)
	return d, err
}

// ExactMapping is Exact returning the optimal vertex mapping as well: the
// edit path witness. The mapping maps g1's vertices into g2 (Deleted for
// removals); uncovered g2 vertices are insertions. Its InducedCost equals
// the returned distance.
func ExactMapping(g1, g2 *graph.Graph, c Costs, budget int) (float64, Mapping, error) {
	if budget <= 0 {
		budget = 200000
	}
	// Map the smaller graph into the larger one: fewer branching levels.
	// The mapping is inverted back before returning when the sides swap.
	swapped := false
	if g1.Order() > g2.Order() {
		g1, g2 = g2, g1
		c = Costs{VSub: c.VSub, VDel: c.VIns, VIns: c.VDel, ESub: c.ESub, EDel: c.EIns, EIns: c.EDel}
		swapped = true
	}
	n1, n2 := g1.Order(), g2.Order()
	start := &searchState{mapped: 0, g: 0}
	if n1 == 0 {
		// Empty source: insert everything in g2.
		d := float64(n2)*c.VIns + float64(g2.Size())*c.EIns
		return d, finalMapping(Mapping{}, n1, n2, swapped), nil
	}
	start.h = heuristic(g1, g2, nil, c)
	pq := &stateQueue{start}
	expanded := 0
	for pq.Len() > 0 {
		s := heap.Pop(pq).(*searchState)
		if s.mapped == n1 {
			// Remaining g2 vertices and their edges were charged by the
			// final heuristic-free completion below.
			return s.g, finalMapping(s.mapping(n1), n1, n2, swapped), nil
		}
		expanded++
		if expanded > budget {
			return 0, nil, ErrBudget
		}
		u := s.mapped
		used := s.usedSet(n2)
		// Option 1: map u to each unused v in g2.
		for v := 0; v < n2; v++ {
			if used[v] {
				continue
			}
			child := s.extend(u, v, g1, g2, c)
			if child.mapped == n1 {
				child.g += completionCost(g1, g2, child, c)
			}
			child.h = 0
			if child.mapped < n1 {
				child.h = heuristic(g1, g2, child, c)
			}
			heap.Push(pq, child)
		}
		// Option 2: delete u.
		child := s.extend(u, Deleted, g1, g2, c)
		if child.mapped == n1 {
			child.g += completionCost(g1, g2, child, c)
		}
		child.h = 0
		if child.mapped < n1 {
			child.h = heuristic(g1, g2, child, c)
		}
		heap.Push(pq, child)
	}
	return 0, nil, errors.New("ged: search space exhausted unexpectedly")
}

// finalMapping orients a g1→g2 mapping for the caller's original argument
// order, inverting it when the A* search swapped the sides.
func finalMapping(m Mapping, n1, n2 int, swapped bool) Mapping {
	if !swapped {
		return m
	}
	inv := make(Mapping, n2)
	for i := range inv {
		inv[i] = Deleted
	}
	for u, v := range m {
		if v != Deleted {
			inv[v] = u
		}
	}
	return inv
}

// searchState is a node in the A* search tree: a prefix mapping of g1
// vertices [0, mapped) to g2 vertices or Deleted.
type searchState struct {
	parent *searchState
	image  int // image of vertex mapped-1; undefined at the root
	mapped int
	g, h   float64
}

func (s *searchState) usedSet(n2 int) []bool {
	used := make([]bool, n2)
	for t := s; t != nil && t.mapped > 0; t = t.parent {
		if t.image != Deleted {
			used[t.image] = true
		}
	}
	return used
}

func (s *searchState) mapping(n1 int) Mapping {
	m := make(Mapping, n1)
	for i := range m {
		m[i] = Deleted
	}
	for t := s; t != nil && t.mapped > 0; t = t.parent {
		m[t.mapped-1] = t.image
	}
	return m
}

// extend creates the child state mapping vertex u (== s.mapped) to v and
// charges the incremental exact cost of that decision: the vertex operation
// plus all edge operations between u and previously mapped vertices.
func (s *searchState) extend(u, v int, g1, g2 *graph.Graph, c Costs) *searchState {
	child := &searchState{parent: s, image: v, mapped: s.mapped + 1, g: s.g}
	m := s.mapping(g1.Order())
	if v == Deleted {
		child.g += c.VDel
		// Every g1 edge between u and an already-mapped vertex dies.
		g1.Neighbors(u, func(w int, _ graph.Label) {
			if w < u {
				child.g += c.EDel
			}
		})
		return child
	}
	if g1.VertexLabel(u) != g2.VertexLabel(v) {
		child.g += c.VSub
	}
	// Edge costs against already-mapped vertices.
	for w := 0; w < u; w++ {
		l1, has1 := g1.EdgeLabel(u, w)
		mw := m[w]
		var l2 graph.Label
		has2 := false
		if mw != Deleted {
			l2, has2 = g2.EdgeLabel(v, mw)
		}
		switch {
		case has1 && has2:
			if l1 != l2 {
				child.g += c.ESub
			}
		case has1:
			child.g += c.EDel
		case has2:
			child.g += c.EIns
		}
	}
	return child
}

// completionCost charges the g2 vertices and edges untouched by a complete
// mapping: they must all be inserted.
func completionCost(g1, g2 *graph.Graph, s *searchState, c Costs) float64 {
	m := s.mapping(g1.Order())
	covered := make([]bool, g2.Order())
	for _, v := range m {
		if v != Deleted {
			covered[v] = true
		}
	}
	cost := 0.0
	for v, cov := range covered {
		if !cov {
			cost += c.VIns
			_ = v
		}
	}
	for _, e := range g2.Edges() {
		if !covered[e.U] || !covered[e.V] {
			cost += c.EIns
		}
	}
	return cost
}

// heuristic is an admissible lower bound on the cost of completing state s:
// label-multiset matching on the unmapped vertices plus edge count
// difference, each charged at the cheapest applicable operation.
func heuristic(g1, g2 *graph.Graph, s *searchState, c Costs) float64 {
	n1, n2 := g1.Order(), g2.Order()
	mapped := 0
	var used []bool
	if s != nil {
		mapped = s.mapped
		used = s.usedSet(n2)
	} else {
		used = make([]bool, n2)
	}
	// Multisets of labels of unmapped vertices on both sides.
	h1 := make(map[graph.Label]int)
	for u := mapped; u < n1; u++ {
		h1[g1.VertexLabel(u)]++
	}
	rem1 := n1 - mapped
	rem2 := 0
	h2 := make(map[graph.Label]int)
	for v := 0; v < n2; v++ {
		if !used[v] {
			h2[g2.VertexLabel(v)]++
			rem2++
		}
	}
	common := 0
	for l, c1 := range h1 {
		if c2 := h2[l]; c2 < c1 {
			common += c2
		} else {
			common += c1
		}
	}
	matchable := rem1
	if rem2 < matchable {
		matchable = rem2
	}
	sub := matchable - common
	if sub < 0 {
		sub = 0
	}
	cost := float64(sub) * minf(c.VSub, c.VDel+c.VIns)
	if rem1 > rem2 {
		cost += float64(rem1-rem2) * c.VDel
	} else {
		cost += float64(rem2-rem1) * c.VIns
	}
	// Edge count bound over edges not yet charged: edges of g1 with both
	// endpoints unmapped vs likewise for g2.
	e1 := 0
	for _, e := range g1.Edges() {
		if e.U >= mapped && e.V >= mapped {
			e1++
		}
	}
	e2 := 0
	for _, e := range g2.Edges() {
		if !used[e.U] && !used[e.V] {
			e2++
		}
	}
	if e1 > e2 {
		cost += float64(e1-e2) * c.EDel
	} else {
		cost += float64(e2-e1) * c.EIns
	}
	return cost
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// LowerBound returns a cheap lower bound on exact GED: label-multiset
// matching on vertices plus edge-count difference. It never exceeds
// Exact(g1, g2, c).
func LowerBound(g1, g2 *graph.Graph, c Costs) float64 {
	h1, h2 := g1.LabelHistogram(), g2.LabelHistogram()
	n1, n2 := g1.Order(), g2.Order()
	common := 0
	for l, c1 := range h1 {
		if c2 := h2[l]; c2 < c1 {
			common += c2
		} else {
			common += c1
		}
	}
	matchable := n1
	if n2 < matchable {
		matchable = n2
	}
	sub := matchable - common
	if sub < 0 {
		sub = 0
	}
	cost := float64(sub) * minf(c.VSub, c.VDel+c.VIns)
	if n1 > n2 {
		cost += float64(n1-n2) * c.VDel
	} else {
		cost += float64(n2-n1) * c.VIns
	}
	if e1, e2 := g1.Size(), g2.Size(); e1 > e2 {
		cost += float64(e1-e2) * c.EDel
	} else {
		cost += float64(e2-e1) * c.EIns
	}
	return cost
}

// stateQueue is an A* open list: a min-heap on f = g + h.
type stateQueue []*searchState

func (q stateQueue) Len() int           { return len(q) }
func (q stateQueue) Less(i, j int) bool { return q[i].g+q[i].h < q[j].g+q[j].h }
func (q stateQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *stateQueue) Push(x any)        { *q = append(*q, x.(*searchState)) }
func (q *stateQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}
