package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphrep/internal/graph"
)

// mkGraph builds a small labelled graph from label and edge lists.
func mkGraph(t testing.TB, labels []graph.Label, edges [][3]int) *graph.Graph {
	if t != nil {
		t.Helper()
	}
	b := graph.NewBuilder(len(labels))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], graph.Label(e[2]))
	}
	g, err := b.Build(0)
	if err != nil {
		if t != nil {
			t.Fatalf("Build: %v", err)
		}
		panic(err)
	}
	return g
}

func randGraph(rng *rand.Rand, maxN int) *graph.Graph {
	n := 1 + rng.Intn(maxN)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(rng.Intn(4)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.35 {
				b.AddEdge(u, v, graph.Label(rng.Intn(2)))
			}
		}
	}
	g, err := b.Build(0)
	if err != nil {
		panic(err)
	}
	return g
}

func TestCostsValidate(t *testing.T) {
	if err := UniformCosts().Validate(); err != nil {
		t.Errorf("UniformCosts invalid: %v", err)
	}
	bad := UniformCosts()
	bad.VSub = 5
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted VSub > VDel+VIns")
	}
	neg := UniformCosts()
	neg.EDel = -1
	if err := neg.Validate(); err == nil {
		t.Error("Validate accepted negative cost")
	}
	badE := UniformCosts()
	badE.ESub = 9
	if err := badE.Validate(); err == nil {
		t.Error("Validate accepted ESub > EDel+EIns")
	}
}

func TestExactIdentical(t *testing.T) {
	g := mkGraph(t, []graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	d, err := Exact(g, g, UniformCosts(), 0)
	if err != nil || d != 0 {
		t.Errorf("Exact(g,g) = %v, %v; want 0, nil", d, err)
	}
}

func TestExactKnownValues(t *testing.T) {
	c := UniformCosts()
	a := mkGraph(t, []graph.Label{1, 2}, [][3]int{{0, 1, 0}})
	b := mkGraph(t, []graph.Label{1, 3}, [][3]int{{0, 1, 0}})
	// One vertex relabel.
	if d, err := Exact(a, b, c, 0); err != nil || d != 1 {
		t.Errorf("relabel: d=%v err=%v, want 1", d, err)
	}
	// Add one vertex + one edge.
	e := mkGraph(t, []graph.Label{1, 2, 4}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	if d, err := Exact(a, e, c, 0); err != nil || d != 2 {
		t.Errorf("grow: d=%v err=%v, want 2", d, err)
	}
	// Empty vs non-empty, both directions.
	empty := mkGraph(t, nil, nil)
	if d, err := Exact(empty, a, c, 0); err != nil || d != 3 {
		t.Errorf("empty->a: d=%v err=%v, want 3 (2 vertices + 1 edge)", d, err)
	}
	if d, err := Exact(a, empty, c, 0); err != nil || d != 3 {
		t.Errorf("a->empty: d=%v err=%v, want 3", d, err)
	}
	// Edge label substitution only.
	f := mkGraph(t, []graph.Label{1, 2}, [][3]int{{0, 1, 9}})
	if d, err := Exact(a, f, c, 0); err != nil || d != 1 {
		t.Errorf("edge relabel: d=%v err=%v, want 1", d, err)
	}
}

func TestExactSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := UniformCosts()
	for i := 0; i < 30; i++ {
		a, b := randGraph(rng, 5), randGraph(rng, 5)
		d1, err1 := Exact(a, b, c, 0)
		d2, err2 := Exact(b, a, c, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("err: %v %v", err1, err2)
		}
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
	}
}

func TestExactBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := randGraph(rng, 8), randGraph(rng, 8)
	if _, err := Exact(a, b, UniformCosts(), 1); err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestBoundsSandwichExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := UniformCosts()
	for i := 0; i < 60; i++ {
		a, b := randGraph(rng, 6), randGraph(rng, 6)
		exact, err := Exact(a, b, c, 0)
		if err != nil {
			t.Fatalf("Exact: %v", err)
		}
		lb := LowerBound(a, b, c)
		ub, m := Bipartite(a, b, c)
		if lb > exact+1e-9 {
			t.Fatalf("lower bound %v > exact %v", lb, exact)
		}
		if ub < exact-1e-9 {
			t.Fatalf("bipartite %v < exact %v", ub, exact)
		}
		if !m.Valid(b.Order()) {
			t.Fatalf("bipartite mapping invalid: %v", m)
		}
		if got := m.InducedCost(a, b, c); math.Abs(got-ub) > 1e-9 {
			t.Fatalf("InducedCost %v != Bipartite %v", got, ub)
		}
	}
}

// The mapping returned by ExactMapping must be a valid witness: its induced
// cost equals the optimal distance, in both argument orders (including the
// internal side swap).
func TestExactMappingIsWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	c := UniformCosts()
	for i := 0; i < 40; i++ {
		a, b := randGraph(rng, 6), randGraph(rng, 4) // force swaps sometimes
		d, m, err := ExactMapping(a, b, c, 0)
		if err != nil {
			t.Fatalf("ExactMapping: %v", err)
		}
		if !m.Valid(b.Order()) || len(m) != a.Order() {
			t.Fatalf("invalid mapping %v for orders %d->%d", m, a.Order(), b.Order())
		}
		if got := m.InducedCost(a, b, c); math.Abs(got-d) > 1e-9 {
			t.Fatalf("witness cost %v != distance %v (mapping %v)", got, d, m)
		}
	}
}

func TestBeamIsUpperBoundOnExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := UniformCosts()
	for i := 0; i < 40; i++ {
		a, b := randGraph(rng, 6), randGraph(rng, 6)
		exact, err := Exact(a, b, c, 0)
		if err != nil {
			t.Fatalf("Exact: %v", err)
		}
		for _, width := range []int{1, 3, 10} {
			ub, err := Beam(a, b, c, width)
			if err != nil {
				t.Fatalf("Beam(%d): %v", width, err)
			}
			if ub < exact-1e-9 {
				t.Fatalf("Beam(%d) = %v < exact %v", width, ub, exact)
			}
		}
	}
}

func TestBeamWideMatchesExactOnTinyGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := UniformCosts()
	for i := 0; i < 25; i++ {
		a, b := randGraph(rng, 4), randGraph(rng, 4)
		exact, err := Exact(a, b, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A beam wider than the whole search frontier is exhaustive.
		ub, err := Beam(a, b, c, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ub-exact) > 1e-9 {
			t.Fatalf("wide beam %v != exact %v", ub, exact)
		}
	}
}

func TestBeamEdgeCases(t *testing.T) {
	c := UniformCosts()
	empty := mkGraph(t, nil, nil)
	a := mkGraph(t, []graph.Label{1, 2}, [][3]int{{0, 1, 0}})
	if d, err := Beam(empty, a, c, 4); err != nil || d != 3 {
		t.Errorf("Beam(empty,a) = %v, %v; want 3", d, err)
	}
	if d, err := Beam(a, empty, c, 4); err != nil || d != 3 {
		t.Errorf("Beam(a,empty) = %v, %v; want 3", d, err)
	}
	if d, err := Beam(a, a, c, 1); err != nil || d != 0 {
		t.Errorf("Beam(a,a) = %v, %v; want 0", d, err)
	}
	if _, err := Beam(a, a, c, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestInducedCostIdentityMapping(t *testing.T) {
	g := mkGraph(t, []graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 1}})
	m := Mapping{0, 1, 2}
	if got := m.InducedCost(g, g, UniformCosts()); got != 0 {
		t.Errorf("identity InducedCost = %v, want 0", got)
	}
	del := Mapping{Deleted, 1, 2}
	// Deleting vertex 0 also deletes edge (0,1); vertex 0 of g2 is inserted
	// along with its edge (0,1): total 1+1+1+1 = 4.
	if got := del.InducedCost(g, g, UniformCosts()); got != 4 {
		t.Errorf("delete-0 InducedCost = %v, want 4", got)
	}
}

func TestMappingValid(t *testing.T) {
	if !(Mapping{0, Deleted, 2}).Valid(3) {
		t.Error("valid mapping rejected")
	}
	if (Mapping{0, 0}).Valid(3) {
		t.Error("duplicate image accepted")
	}
	if (Mapping{5}).Valid(3) {
		t.Error("out-of-range image accepted")
	}
}

func TestStarDistanceBasics(t *testing.T) {
	a := mkGraph(t, []graph.Label{1, 2}, [][3]int{{0, 1, 0}})
	if d := StarDistance(a, a); d != 0 {
		t.Errorf("StarDistance(a,a) = %v, want 0", d)
	}
	empty := mkGraph(t, nil, nil)
	if d := StarDistance(empty, empty); d != 0 {
		t.Errorf("StarDistance(empty,empty) = %v, want 0", d)
	}
	// a vs empty: two stars of degree 1 each vs padding: (1+1)*2 = 4.
	if d := StarDistance(a, empty); d != 4 {
		t.Errorf("StarDistance(a,empty) = %v, want 4", d)
	}
}

func TestStarSigMatchesStarDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		a, b := randGraph(rng, 8), randGraph(rng, 8)
		want := StarDistance(a, b)
		got := NewStarSig(a).Distance(NewStarSig(b))
		if got != want {
			t.Fatalf("StarSig.Distance = %v, StarDistance = %v", got, want)
		}
	}
}

// The load-bearing property: StarDistance is a metric. Theorems 3-8 of the
// paper are only sound if d satisfies the triangle inequality.
func TestStarDistanceIsMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randGraph(r, 7), randGraph(r, 7), randGraph(r, 7)
		dab, dba := StarDistance(a, b), StarDistance(b, a)
		dac, dbc := StarDistance(a, c), StarDistance(b, c)
		if dab < 0 || math.Abs(dab-dba) > 1e-9 {
			return false
		}
		return dac <= dab+dbc+1e-9 // triangle through b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Exact GED with uniform costs must itself satisfy the triangle inequality on
// small graphs, validating the A* implementation.
func TestExactTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := UniformCosts()
	for i := 0; i < 25; i++ {
		a, b, g := randGraph(rng, 5), randGraph(rng, 5), randGraph(rng, 5)
		dab, e1 := Exact(a, b, c, 0)
		dbg, e2 := Exact(b, g, c, 0)
		dag, e3 := Exact(a, g, c, 0)
		if e1 != nil || e2 != nil || e3 != nil {
			t.Fatalf("errs: %v %v %v", e1, e2, e3)
		}
		if dag > dab+dbg+1e-9 {
			t.Fatalf("triangle violated: d(a,g)=%v > %v+%v", dag, dab, dbg)
		}
	}
}

// BenchmarkStarDistance measures the steady-state kernel the engine actually
// runs: precomputed StarSigs (metric.Star caches them per graph) feeding the
// pooled Hungarian solve. Steady-state allocs/op is 0.
func BenchmarkStarDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s1 := NewStarSig(randGraph(rng, 26))
	s2 := NewStarSig(randGraph(rng, 26))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1.Distance(s2)
	}
}

// BenchmarkStarDistanceDecompose retains the historical measurement including
// the per-call star decomposition (the cold path).
func BenchmarkStarDistanceDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g1, g2 := randGraph(rng, 26), randGraph(rng, 26)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StarDistance(g1, g2)
	}
}

func BenchmarkBeamWidth5(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g1, g2 := randGraph(rng, 12), randGraph(rng, 12)
	c := UniformCosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Beam(g1, g2, c, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBipartite(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g1, g2 := randGraph(rng, 26), randGraph(rng, 26)
	c := UniformCosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bipartite(g1, g2, c)
	}
}
