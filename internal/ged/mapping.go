package ged

import "graphrep/internal/graph"

// Deleted marks a g1 vertex with no image in g2 inside a Mapping.
const Deleted = -1

// Mapping assigns each vertex of g1 either a distinct vertex of g2 or
// Deleted. Vertices of g2 not covered by the mapping are insertions.
type Mapping []int

// InducedCost returns the exact cost of the edit path implied by mapping m
// from g1 to g2 under costs c. It is an upper bound on GED(g1,g2) for any
// valid mapping, and equals GED for an optimal mapping.
func (m Mapping) InducedCost(g1, g2 *graph.Graph, c Costs) float64 {
	cost := 0.0
	covered := make([]bool, g2.Order())
	for u, v := range m {
		if v == Deleted {
			cost += c.VDel
			continue
		}
		covered[v] = true
		if g1.VertexLabel(u) != g2.VertexLabel(v) {
			cost += c.VSub
		}
	}
	for _, cov := range covered {
		if !cov {
			cost += c.VIns
		}
	}
	// Edges of g1: mapped to an edge of g2 (keep or substitute) or deleted.
	for _, e := range g1.Edges() {
		mu, mv := m[e.U], m[e.V]
		if mu == Deleted || mv == Deleted {
			cost += c.EDel
			continue
		}
		if l2, ok := g2.EdgeLabel(mu, mv); ok {
			if l2 != e.Label {
				cost += c.ESub
			}
		} else {
			cost += c.EDel
		}
	}
	// Edges of g2 with no preimage edge in g1 are insertions.
	inv := make([]int, g2.Order())
	for i := range inv {
		inv[i] = Deleted
	}
	for u, v := range m {
		if v != Deleted {
			inv[v] = u
		}
	}
	for _, e := range g2.Edges() {
		pu, pv := inv[e.U], inv[e.V]
		if pu == Deleted || pv == Deleted {
			cost += c.EIns
			continue
		}
		if !g1.HasEdge(pu, pv) {
			cost += c.EIns
		}
	}
	return cost
}

// Valid reports whether m is a well-formed mapping from a graph of order
// len(m) into g2: images are in range and distinct.
func (m Mapping) Valid(order2 int) bool {
	seen := make([]bool, order2)
	for _, v := range m {
		if v == Deleted {
			continue
		}
		if v < 0 || v >= order2 || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
