//go:build race

package ged

// raceEnabled gates allocation-count assertions: race instrumentation
// allocates shadow state, so AllocsPerRun regressions only run without -race.
const raceEnabled = true
