package ged

import (
	"graphrep/internal/assignment"
	"graphrep/internal/graph"
)

// Bipartite computes the Riesen–Bunke assignment-based approximation of
// GED(g1, g2) under costs c. It builds the (n1+n2)×(n1+n2) vertex cost
// matrix whose substitution entries fold in an estimate of the local edge
// edit cost, solves the assignment optimally, and then charges the *exact*
// induced edit cost of the resulting vertex mapping. The returned value is
// therefore always an upper bound on exact GED. The mapping is returned for
// callers that want the edit path (e.g. closure construction in the C-tree).
func Bipartite(g1, g2 *graph.Graph, c Costs) (float64, Mapping) {
	n1, n2 := g1.Order(), g2.Order()
	n := n1 + n2
	if n == 0 {
		return 0, Mapping{}
	}
	const inf = 1e18
	cost := make([][]float64, n)
	flat := make([]float64, n*n)
	s1, s2 := g1.Stars(), g2.Stars()
	for i := range cost {
		cost[i], flat = flat[:n:n], flat[n:]
	}
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			// Substitution: vertex label cost + estimated cost of aligning
			// the incident edge multisets (each edge shared by two vertices,
			// hence the /2).
			v := 0.0
			if g1.VertexLabel(i) != g2.VertexLabel(j) {
				v = c.VSub
			}
			cost[i][j] = v + edgeNeighborhoodCost(s1[i], s2[j], c)/2
		}
		for j := n2; j < n; j++ {
			if j-n2 == i {
				cost[i][j] = c.VDel + float64(g1.Degree(i))*c.EDel/2
			} else {
				cost[i][j] = inf
			}
		}
	}
	for i := n1; i < n; i++ {
		for j := 0; j < n2; j++ {
			if i-n1 == j {
				cost[i][j] = c.VIns + float64(g2.Degree(j))*c.EIns/2
			} else {
				cost[i][j] = inf
			}
		}
		for j := n2; j < n; j++ {
			cost[i][j] = 0
		}
	}
	perm, _ := assignment.Solve(cost)
	m := make(Mapping, n1)
	for i := 0; i < n1; i++ {
		if perm[i] < n2 {
			m[i] = perm[i]
		} else {
			m[i] = Deleted
		}
	}
	return m.InducedCost(g1, g2, c), m
}

// spokeSymmetricDifference computes |A Δ B| for the sorted spoke multisets.
// (The star kernel's hot path uses the packed-key form in star.go; this
// struct-based variant serves the validation-only bipartite bound.)
func spokeSymmetricDifference(a, b []graph.Spoke) int {
	i, j, common := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i].EdgeLabel < b[j].EdgeLabel ||
			(a[i].EdgeLabel == b[j].EdgeLabel && a[i].LeafLabel < b[j].LeafLabel):
			i++
		default:
			j++
		}
	}
	return len(a) + len(b) - 2*common
}

// edgeNeighborhoodCost estimates the edge edits needed to align the spoke
// multisets of two stars: matched spokes may need a substitution, unmatched
// ones a deletion or insertion.
func edgeNeighborhoodCost(a, b graph.Star, c Costs) float64 {
	la, lb := len(a.Spokes), len(b.Spokes)
	common := (la + lb - spokeSymmetricDifference(a.Spokes, b.Spokes)) / 2
	cost := 0.0
	if la > common {
		cost += float64(la-common) * c.EDel
	}
	if lb > common {
		cost += float64(lb-common) * c.EIns
	}
	return cost
}
