package ged

import (
	"container/heap"
	"fmt"

	"graphrep/internal/graph"
)

// Beam computes a beam-search upper bound on GED(g1, g2): the A* search of
// Exact restricted to the best `width` states per level. Beam search is the
// standard middle ground between the bipartite bound (fast, loose) and exact
// A* (tight, exponential): width 1 degenerates to a greedy mapping, larger
// widths approach the exact distance. The returned value is the induced cost
// of a complete mapping, hence always ≥ exact GED and a valid upper bound.
func Beam(g1, g2 *graph.Graph, c Costs, width int) (float64, error) {
	if width < 1 {
		return 0, fmt.Errorf("ged: beam width %d < 1", width)
	}
	if g1.Order() > g2.Order() {
		g1, g2 = g2, g1
		c = Costs{VSub: c.VSub, VDel: c.VIns, VIns: c.VDel, ESub: c.ESub, EDel: c.EIns, EIns: c.EDel}
	}
	n1, n2 := g1.Order(), g2.Order()
	if n1 == 0 {
		return float64(n2)*c.VIns + float64(g2.Size())*c.EIns, nil
	}
	level := []*searchState{{mapped: 0}}
	for depth := 0; depth < n1; depth++ {
		next := &stateQueue{}
		for _, s := range level {
			used := s.usedSet(n2)
			for v := 0; v < n2; v++ {
				if used[v] {
					continue
				}
				child := s.extend(depth, v, g1, g2, c)
				child.h = heuristic(g1, g2, child, c)
				heap.Push(next, child)
			}
			child := s.extend(depth, Deleted, g1, g2, c)
			child.h = heuristic(g1, g2, child, c)
			heap.Push(next, child)
		}
		level = level[:0]
		for len(level) < width && next.Len() > 0 {
			level = append(level, heap.Pop(next).(*searchState))
		}
	}
	best := -1.0
	for _, s := range level {
		if total := s.g + completionCost(g1, g2, s, c); best < 0 || total < best {
			best = total
		}
	}
	return best, nil
}
