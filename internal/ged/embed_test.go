package ged

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"graphrep/internal/graph"
)

// The embedding tier's admissibility property: LowerBound never exceeds the
// exact star distance, is symmetric, and is zero on identical graphs. This is
// the invariant that lets the cascade prune on it without ever changing a
// Within verdict.
func TestEmbeddingLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1, g2 := randGraph(r, 12), randGraph(r, 12)
		e1, e2 := NewEmbedding(g1), NewEmbedding(g2)
		d := StarDistance(g1, g2)
		lb := e1.LowerBound(e2)
		if lb > d {
			t.Logf("seed=%d: LowerBound %v > distance %v", seed, lb, d)
			return false
		}
		if back := e2.LowerBound(e1); back != lb {
			t.Logf("seed=%d: asymmetric bound %v vs %v", seed, lb, back)
			return false
		}
		if self := e1.LowerBound(e1); self != 0 {
			t.Logf("seed=%d: self bound %v != 0", seed, self)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// The embedding bound must subsume the two cascade tiers it retired: on every
// pair it is at least the size/padding bound and at least the center-label
// histogram bound, both re-derived here directly from the star decompositions
// (not from the Embedding internals). This is the justification for removing
// the standalone tiers — proven dead on the reference workload — without
// loosening the cascade.
func TestEmbeddingSubsumesRetiredTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 500; i++ {
		g1, g2 := randGraph(rng, 12), randGraph(rng, 12)
		lb := NewEmbedding(g1).LowerBound(NewEmbedding(g2))

		s1, s2 := g1.Stars(), g2.Stars()
		// Size/padding bound: |n1-n2| padding stars each pay 1+degree against
		// a distinct star of the larger graph; the cheapest total is the sum
		// of the smallest padding costs.
		big := s1
		if len(s2) > len(s1) {
			big = s2
		}
		diff := len(s1) - len(s2)
		if diff < 0 {
			diff = -diff
		}
		pads := make([]int, len(big))
		for j := range big {
			pads[j] = 1 + big[j].Degree()
		}
		for a := 0; a < len(pads); a++ { // selection sort: tiny n
			for b := a + 1; b < len(pads); b++ {
				if pads[b] < pads[a] {
					pads[a], pads[b] = pads[b], pads[a]
				}
			}
		}
		sizeLB := 0
		for j := 0; j < diff; j++ {
			sizeLB += pads[j]
		}
		if lb < float64(sizeLB) {
			t.Fatalf("pair %d: embedding bound %v below size bound %d", i, lb, sizeLB)
		}
		// Center-label histogram bound: at most Σ min(cnt1, cnt2) matched
		// pairs agree on their center, every other pair pays ≥ 1.
		h1 := map[graph.Label]int{}
		for _, s := range s1 {
			h1[s.Center]++
		}
		common := 0
		for _, s := range s2 {
			if h1[s.Center] > 0 {
				h1[s.Center]--
				common++
			}
		}
		n := len(s1)
		if len(s2) > n {
			n = len(s2)
		}
		if histLB := n - common; lb < float64(histLB) {
			t.Fatalf("pair %d: embedding bound %v below histogram bound %d", i, lb, histLB)
		}
	}
}

// Embeddings persist in the v3 index container, so the codec must round-trip
// exactly: decode(encode(e)) re-encodes to the same bytes and proves the same
// bounds. Byte-stability is what keeps index files identical across
// save/load/save cycles.
func TestEmbeddingEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 200; i++ {
		g := randGraph(rng, 14)
		e := NewEmbedding(g)
		var buf bytes.Buffer
		if err := e.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		dec, err := DecodeEmbedding(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if buf.Len() != 0 {
			t.Fatalf("graph %d: decode left %d trailing bytes", i, buf.Len())
		}
		var again bytes.Buffer
		if err := dec.Encode(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), first) {
			t.Fatalf("graph %d: re-encoded bytes differ", i)
		}
		if dec.Stars() != e.Stars() || dec.Dims() != e.Dims() {
			t.Fatalf("graph %d: decoded shape differs", i)
		}
		o := NewEmbedding(randGraph(rng, 14))
		if got, want := dec.LowerBound(o), e.LowerBound(o); got != want {
			t.Fatalf("graph %d: decoded bound %v != original %v", i, got, want)
		}
	}
}

// DecodeEmbedding must reject corrupt headers instead of allocating
// absurd buffers or mis-framing the stream.
func TestDecodeEmbeddingRejectsCorrupt(t *testing.T) {
	e := NewEmbedding(mkGraph(t, []graph.Label{1, 2}, [][3]int{{0, 1, 0}}))
	var buf bytes.Buffer
	if err := e.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"absurd star count", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0], c[1], c[2], c[3] = 0xff, 0xff, 0xff, 0x7f
			return c
		}},
		{"centers exceed stars", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4], c[5] = 0xff, 0x00 // nc = 255 > n = 2
			return c
		}},
	} {
		if _, err := DecodeEmbedding(bytes.NewReader(tc.mutate(blob))); err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
		}
	}
}

// FuzzWithinMatchesDistance fuzzes the bounded kernel's core contract on
// arbitrary graph pairs: at every adversarial threshold — the exact distance,
// the ±1 integer boundaries, and fractional offsets — DistanceAtMost must
// agree with the exact distance comparison, and the embedding bound must stay
// admissible. The corpus drives both graph shapes from raw bytes, so the
// fuzzer explores degenerate shapes (empty, single-vertex, dense) that the
// random-pair property tests sample only rarely.
func FuzzWithinMatchesDistance(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(7))
	f.Add(int64(42), uint8(1), uint8(1))
	f.Add(int64(-9), uint8(0), uint8(12))
	f.Add(int64(1<<40), uint8(13), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n1, n2 uint8) {
		r := rand.New(rand.NewSource(seed))
		a := NewStarSig(fuzzGraph(r, int(n1)%14))
		b := NewStarSig(fuzzGraph(r, int(n2)%14))
		d := a.Distance(b)
		if lb := a.Embedding().LowerBound(b.Embedding()); lb > d {
			t.Fatalf("embedding bound %v > distance %v", lb, d)
		}
		for _, tau := range []float64{d, d - 1, d + 1, d - 0.5, d + 0.5, 0, -1, d / 3, 2 * d} {
			dec := a.DistanceAtMost(b, tau)
			if dec.Leq != (d <= tau) {
				t.Fatalf("tau=%v d=%v: Leq=%v stage=%v", tau, d, dec.Leq, dec.Stage)
			}
			if dec.Lo > d || dec.Hi < d {
				t.Fatalf("tau=%v d=%v: proven interval [%v,%v] excludes the distance", tau, d, dec.Lo, dec.Hi)
			}
		}
	})
}

// fuzzGraph derives a graph of up to maxN vertices from the fuzzed RNG; zero
// vertices are bumped to one (the builder requires a vertex) except when
// maxN is 0, which exercises the empty-graph path via a single vertex too.
func fuzzGraph(r *rand.Rand, maxN int) *graph.Graph {
	n := maxN
	if n < 1 {
		n = 1
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(3)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(3) == 0 {
				b.AddEdge(u, v, graph.Label(r.Intn(2)))
			}
		}
	}
	g, err := b.Build(0)
	if err != nil {
		panic(err)
	}
	return g
}
