package ged

import (
	"math"
	"sort"
	"sync"

	"graphrep/internal/assignment"
	"graphrep/internal/graph"
)

// StarDistance computes the star-matching distance between g1 and g2: both
// graphs are decomposed into their vertex stars, the star multisets are
// padded with empty stars to equal cardinality, and the minimum-cost star
// assignment (Hungarian algorithm) is returned.
//
// The ground cost between two stars is
//
//	centerCost(s1,s2) + |spokes(s1) Δ spokes(s2)|
//
// with centerCost the discrete metric on center labels and Δ the multiset
// symmetric difference; the cost against the padding star ε is 1 + degree.
// Both pieces are metrics on the extended star space, and the minimum-cost
// matching between equal-cardinality multisets under a metric ground cost is
// itself a metric — so StarDistance satisfies the triangle inequality
// exactly, which Theorems 3–8 of the paper rely on.
//
// Every ground cost is a small non-negative integer, so all arithmetic in the
// kernel — including the threshold-bounded cascade below — is exact in
// float64. That integrality is what makes DistanceAtMost(b, τ) equivalent to
// Distance(b) ≤ τ bit for bit.
//
// StarDistance is the default database distance d(g,g') of this library and
// corresponds to the mapping distance of the paper's GED citation [28].
func StarDistance(g1, g2 *graph.Graph) float64 {
	return starDistance(g1.Stars(), g2.Stars())
}

// StarSig is a precomputed star decomposition, used to amortize the
// decomposition cost when one graph participates in many distance
// computations (as every pivot, centroid, and vantage point does). It also
// carries the sorted center-label multiset and padding-cost prefix sums that
// power the constant- and linear-time lower bounds of DistanceAtMost.
type StarSig struct {
	stars []graph.Star
	// centers is the sorted multiset of star center labels.
	centers []graph.Label
	// padPrefix[k] is the sum of the k smallest padding costs (1 + degree)
	// over this graph's stars: the cheapest possible price of matching k
	// padding stars ε against k distinct stars of this graph.
	padPrefix []float64
}

// NewStarSig precomputes the star decomposition of g along with the
// lower-bound summaries.
func NewStarSig(g *graph.Graph) *StarSig {
	stars := g.Stars()
	sig := &StarSig{
		stars:     stars,
		centers:   make([]graph.Label, len(stars)),
		padPrefix: make([]float64, len(stars)+1),
	}
	pad := make([]float64, len(stars))
	for i := range stars {
		sig.centers[i] = stars[i].Center
		pad[i] = 1 + float64(stars[i].Degree())
	}
	sort.Slice(sig.centers, func(i, j int) bool { return sig.centers[i] < sig.centers[j] })
	sort.Float64s(pad)
	for i, c := range pad {
		sig.padPrefix[i+1] = sig.padPrefix[i] + c
	}
	return sig
}

// Distance computes the star-matching distance between two signatures. The
// solve runs on pooled scratch, so steady-state calls allocate nothing.
func (a *StarSig) Distance(b *StarSig) float64 {
	n := len(a.stars)
	if len(b.stars) > n {
		n = len(b.stars)
	}
	if n == 0 {
		return 0
	}
	sc := getScratch(n)
	fillCost(sc, a.stars, b.stars, n)
	total := sc.solver.Total(sc.cost)
	putScratch(sc)
	return total
}

// Stage identifies where the bounded distance cascade terminated.
type Stage uint8

const (
	// StageSize: pruned by the size/padding lower bound (O(1)).
	StageSize Stage = iota
	// StageHistogram: pruned by the center-label histogram bound (O(n)).
	StageHistogram
	// StageRowMin: pruned by the row-minima/column-minima bound (O(n²),
	// computed while filling the cost matrix).
	StageRowMin
	// StageGreedy: decided ≤ τ by the swap-polished greedy-assignment upper
	// bound (O(n²)).
	StageGreedy
	// StageDual: pruned mid-solve by the Hungarian dual objective.
	StageDual
	// StageExact: the solve ran to completion; Lo == Hi == Distance.
	StageExact
	numStages
)

// NumStages is the number of cascade stages, for sizing per-stage counters.
const NumStages = int(numStages)

// String names the stage for stats output.
func (s Stage) String() string {
	switch s {
	case StageSize:
		return "size"
	case StageHistogram:
		return "histogram"
	case StageRowMin:
		return "rowmin"
	case StageGreedy:
		return "greedy"
	case StageDual:
		return "dual"
	case StageExact:
		return "exact"
	}
	return "unknown"
}

// Decision is the outcome of DistanceAtMost: the threshold verdict plus the
// distance interval [Lo, Hi] the cascade proved along the way (Hi is +Inf
// when no upper bound was established). Lo ≤ Distance ≤ Hi always holds, the
// interval is exact (Lo == Hi) iff Stage == StageExact, and Leq is false only
// when Lo > τ, true only when Hi ≤ τ.
type Decision struct {
	Leq   bool
	Stage Stage
	Lo    float64
	Hi    float64
}

// Exact reports whether the cascade computed the exact distance.
func (d Decision) Exact() bool { return d.Stage == StageExact }

// DistanceAtMost decides Distance(a,b) ≤ tau through a cascade of provable
// bounds, running the exact Hungarian solve only when no cheaper stage is
// conclusive: size/padding bound → center-label histogram bound → row/column
// minima bound → greedy upper bound → dual-bounded Hungarian. Because every
// ground cost is a non-negative integer, the decision equals
// Distance(a,b) ≤ tau exactly, for every tau.
func (a *StarSig) DistanceAtMost(b *StarSig, tau float64) Decision {
	n1, n2 := len(a.stars), len(b.stars)
	n := n1
	if n2 > n {
		n = n2
	}
	if n == 0 {
		return Decision{Leq: 0 <= tau, Stage: StageExact, Lo: 0, Hi: 0}
	}
	inf := math.Inf(1)

	// Stage 1 — size/padding: the |n1−n2| padding stars must each be matched
	// against a distinct real star of the larger graph, paying at least its
	// 1+degree; the prefix sum gives the cheapest such total in O(1).
	lo := 0.0
	switch {
	case n1 < n2:
		lo = b.padPrefix[n2-n1]
	case n2 < n1:
		lo = a.padPrefix[n1-n2]
	}
	if lo > tau {
		return Decision{Leq: false, Stage: StageSize, Lo: lo, Hi: inf}
	}

	// Stage 2 — center-label histogram: a star pair costs 0 only if the
	// centers agree, and at most min(cnt1[l], cnt2[l]) pairs can agree on
	// label l, so at least n − Σ_l min(cnt1[l], cnt2[l]) pairs cost ≥ 1.
	if lb := float64(n - sortedCommonCount(a.centers, b.centers)); lb > lo {
		lo = lb
		if lo > tau {
			return Decision{Leq: false, Stage: StageHistogram, Lo: lo, Hi: inf}
		}
	}

	// Stage 3 — fill the cost matrix, tracking row and column minima: every
	// row (and every column) is assigned somewhere, so both Σ_i min_j c[i][j]
	// and Σ_j min_i c[i][j] bound the optimum from below.
	sc := getScratch(n)
	rowSum, colSum := fillCostWithMins(sc, a.stars, b.stars, n)
	if lb := math.Max(rowSum, colSum); lb > lo {
		lo = lb
		if lo > tau {
			putScratch(sc)
			return Decision{Leq: false, Stage: StageRowMin, Lo: lo, Hi: inf}
		}
	}

	// Stage 4 — greedy upper bound: any feasible assignment bounds the
	// optimum from above, so greedy (with swap polish) ≤ τ already proves
	// the answer.
	if ub := sc.solver.UpperBound(sc.cost); ub <= tau {
		putScratch(sc)
		return Decision{Leq: true, Stage: StageGreedy, Lo: lo, Hi: ub}
	}

	// Stage 5/6 — dual-bounded Hungarian: the solve aborts as soon as its
	// partial dual objective exceeds τ, otherwise it completes exactly.
	total, aborted := sc.solver.TotalAtMost(sc.cost, tau)
	putScratch(sc)
	if aborted {
		if total > lo {
			lo = total
		}
		return Decision{Leq: false, Stage: StageDual, Lo: lo, Hi: inf}
	}
	return Decision{Leq: total <= tau, Stage: StageExact, Lo: total, Hi: total}
}

// starScratch is the pooled per-solve arena: the flat cost matrix plus the
// assignment solver's own scratch. One scratch serves one solve at a time;
// concurrency gets distinct instances from the pool.
type starScratch struct {
	flat   []float64
	cost   [][]float64
	solver *assignment.Solver
}

var starPool = sync.Pool{
	New: func() any { return &starScratch{solver: assignment.NewSolver()} },
}

func getScratch(n int) *starScratch {
	sc := starPool.Get().(*starScratch)
	if cap(sc.flat) < n*n {
		sc.flat = make([]float64, n*n)
	}
	sc.flat = sc.flat[:n*n]
	if cap(sc.cost) < n {
		sc.cost = make([][]float64, n)
	}
	sc.cost = sc.cost[:n]
	for i := range sc.cost {
		sc.cost[i] = sc.flat[i*n : (i+1)*n : (i+1)*n]
	}
	return sc
}

func putScratch(sc *starScratch) { starPool.Put(sc) }

// fillCost populates the n×n ground-cost matrix for the padded star multisets.
func fillCost(sc *starScratch, s1, s2 []graph.Star, n int) {
	for i := 0; i < n; i++ {
		row := sc.cost[i]
		for j := 0; j < n; j++ {
			row[j] = starPairCost(starAt(s1, i), starAt(s2, j))
		}
	}
}

// fillCostWithMins populates the cost matrix while accumulating the row- and
// column-minima sums used by the StageRowMin bound.
func fillCostWithMins(sc *starScratch, s1, s2 []graph.Star, n int) (rowSum, colSum float64) {
	for i := 0; i < n; i++ {
		row := sc.cost[i]
		a := starAt(s1, i)
		rowMin := math.Inf(1)
		for j := 0; j < n; j++ {
			c := starPairCost(a, starAt(s2, j))
			row[j] = c
			if c < rowMin {
				rowMin = c
			}
		}
		rowSum += rowMin
	}
	for j := 0; j < n; j++ {
		colMinV := sc.cost[0][j]
		for i := 1; i < n; i++ {
			if c := sc.cost[i][j]; c < colMinV {
				colMinV = c
			}
		}
		colSum += colMinV
	}
	return rowSum, colSum
}

// sortedCommonCount returns the multiset intersection size of two sorted
// label slices.
func sortedCommonCount(a, b []graph.Label) int {
	i, j, common := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return common
}

func starDistance(s1, s2 []graph.Star) float64 {
	n := len(s1)
	if len(s2) > n {
		n = len(s2)
	}
	if n == 0 {
		return 0
	}
	sc := getScratch(n)
	fillCost(sc, s1, s2, n)
	total := sc.solver.Total(sc.cost)
	putScratch(sc)
	return total
}

// starAt returns the i-th star or nil past the end (the padding star ε).
func starAt(s []graph.Star, i int) *graph.Star {
	if i < len(s) {
		return &s[i]
	}
	return nil
}

// starPairCost is the metric ground cost between two (possibly padding)
// stars.
func starPairCost(a, b *graph.Star) float64 {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return 1 + float64(len(b.Spokes))
	case b == nil:
		return 1 + float64(len(a.Spokes))
	}
	c := 0.0
	if a.Center != b.Center {
		c = 1
	}
	return c + float64(spokeSymmetricDifference(a.Spokes, b.Spokes))
}

// spokeSymmetricDifference computes |A Δ B| for the sorted spoke multisets.
func spokeSymmetricDifference(a, b []graph.Spoke) int {
	i, j, common := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch spokeCompare(a[i], b[j]) {
		case 0:
			common++
			i++
			j++
		case -1:
			i++
		default:
			j++
		}
	}
	return len(a) + len(b) - 2*common
}

func spokeCompare(a, b graph.Spoke) int {
	switch {
	case a.EdgeLabel < b.EdgeLabel:
		return -1
	case a.EdgeLabel > b.EdgeLabel:
		return 1
	case a.LeafLabel < b.LeafLabel:
		return -1
	case a.LeafLabel > b.LeafLabel:
		return 1
	}
	return 0
}
