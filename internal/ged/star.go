package ged

import (
	"math"
	"sync"

	"graphrep/internal/assignment"
	"graphrep/internal/graph"
)

// StarDistance computes the star-matching distance between g1 and g2: both
// graphs are decomposed into their vertex stars, the star multisets are
// padded with empty stars to equal cardinality, and the minimum-cost star
// assignment (Hungarian algorithm) is returned.
//
// The ground cost between two stars is
//
//	centerCost(s1,s2) + |spokes(s1) Δ spokes(s2)|
//
// with centerCost the discrete metric on center labels and Δ the multiset
// symmetric difference; the cost against the padding star ε is 1 + degree.
// Both pieces are metrics on the extended star space, and the minimum-cost
// matching between equal-cardinality multisets under a metric ground cost is
// itself a metric — so StarDistance satisfies the triangle inequality
// exactly, which Theorems 3–8 of the paper rely on.
//
// Every ground cost is a small non-negative integer, so all arithmetic in the
// kernel — including the threshold-bounded cascade below — is exact in
// float64. That integrality is what makes DistanceAtMost(b, τ) equivalent to
// Distance(b) ≤ τ bit for bit.
//
// StarDistance is the default database distance d(g,g') of this library and
// corresponds to the mapping distance of the paper's GED citation [28].
func StarDistance(g1, g2 *graph.Graph) float64 {
	return starDistance(g1.Stars(), g2.Stars())
}

// StarSig is a precomputed star decomposition, used to amortize the
// decomposition cost when one graph participates in many distance
// computations (as every pivot, centroid, and vantage point does). It also
// carries the graph's filter Embedding, which powers the constant-per-
// dimension lower bound that opens DistanceAtMost.
type StarSig struct {
	stars []graph.Star
	emb   *Embedding
	pack  starPack
}

// starPack is a flat, cache-friendly rendering of a star decomposition for
// the O(n²) cost-matrix fill: star i's spokes are keys[off[i]:off[i+1]], each
// spoke packed into one uint64 (edge label high, leaf label low — numeric key
// order equals the (EdgeLabel, LeafLabel) spoke order, so each run stays
// sorted), with the center labels in their own dense array. Merging two runs
// of packed keys replaces the struct-by-struct spoke comparison — one integer
// compare per step, no pointer chasing through per-star slices.
type starPack struct {
	keys    []uint64
	off     []int32
	centers []uint32
}

func packStars(stars []graph.Star) starPack {
	total := 0
	for i := range stars {
		total += len(stars[i].Spokes)
	}
	p := starPack{
		keys:    make([]uint64, 0, total),
		off:     make([]int32, len(stars)+1),
		centers: make([]uint32, len(stars)),
	}
	for i := range stars {
		p.centers[i] = uint32(stars[i].Center)
		for _, sp := range stars[i].Spokes {
			p.keys = append(p.keys, uint64(sp.EdgeLabel)<<32|uint64(sp.LeafLabel))
		}
		p.off[i+1] = int32(len(p.keys))
	}
	return p
}

// NewStarSig precomputes the star decomposition of g along with its filter
// embedding.
func NewStarSig(g *graph.Graph) *StarSig {
	stars := g.Stars()
	return &StarSig{stars: stars, emb: newEmbeddingFromStars(stars), pack: packStars(stars)}
}

// NewStarSigWithEmbedding precomputes the star decomposition of g but adopts
// the given embedding instead of recomputing it — the load path hands the
// per-shard vectors persisted in the index container straight to the metric.
// emb must be g's embedding (they are a pure function of the graph); a nil
// emb falls back to computing it.
func NewStarSigWithEmbedding(g *graph.Graph, emb *Embedding) *StarSig {
	stars := g.Stars()
	if emb == nil {
		emb = newEmbeddingFromStars(stars)
	}
	return &StarSig{stars: stars, emb: emb, pack: packStars(stars)}
}

// Embedding returns the signature's filter vector.
func (a *StarSig) Embedding() *Embedding { return a.emb }

// Distance computes the star-matching distance between two signatures. The
// solve runs on pooled scratch, so steady-state calls allocate nothing.
func (a *StarSig) Distance(b *StarSig) float64 {
	n := len(a.stars)
	if len(b.stars) > n {
		n = len(b.stars)
	}
	if n == 0 {
		return 0
	}
	sc := getScratch(n)
	fillCost(sc, &a.pack, &b.pack, n)
	total := sc.solver.Total(sc.cost)
	putScratch(sc)
	return total
}

// DistanceWarm computes the same exact distance as Distance through the
// warm-started solve: one extra memory-speed pass collects the row minima,
// which then seed the solver's row-reduction duals and zero-reduced pre-
// matching (assignment.TotalWarm). On the reference workload the pass costs a
// fraction of what the pre-matched augmentations save, so the bounded
// kernel's exact computations — cache promotions above all — route through
// here. The plain Distance path is left classic: it serves the kernel-off
// baseline, which must remain the untouched reference implementation.
func (a *StarSig) DistanceWarm(b *StarSig) float64 {
	n := len(a.stars)
	if len(b.stars) > n {
		n = len(b.stars)
	}
	if n == 0 {
		return 0
	}
	sc := getScratch(n)
	fillCost(sc, &a.pack, &b.pack, n)
	rowMins(sc, n)
	total := sc.solver.TotalWarm(sc.cost, sc.rowMin)
	putScratch(sc)
	return total
}

// Stage identifies where the bounded distance cascade terminated.
type Stage uint8

const (
	// StageEmbedding: pruned by the precomputed-embedding lower bound — the
	// max of the padding/size bound (O(1)) and the center+spoke histogram L1
	// bound (O(dims)), both read from the two cached filter vectors with no
	// per-pair assignment work. Subsumes the retired size and histogram
	// tiers (Embedding.LowerBound is ≥ both, always).
	StageEmbedding Stage = iota
	// StageRowMin: decided by the row-minima bound (O(n²), computed while
	// filling the cost matrix). Deep misses return the bound alone; shallow
	// misses (within rowMinDeepMargin of τ) additionally complete the solve
	// on the already-filled matrix so the memoized interval is exact — the
	// decision then carries Lo == Hi.
	StageRowMin
	// StageGreedy: decided ≤ τ by the swap-polished greedy-assignment upper
	// bound (O(n²)).
	StageGreedy
	// StageDual: pruned mid-solve by the Hungarian dual objective.
	StageDual
	// StageExact: the solve ran to completion; Lo == Hi == Distance.
	StageExact
	numStages
)

// NumStages is the number of cascade stages, for sizing per-stage counters.
const NumStages = int(numStages)

// String names the stage for stats output.
func (s Stage) String() string {
	switch s {
	case StageEmbedding:
		return "embedding"
	case StageRowMin:
		return "rowmin"
	case StageGreedy:
		return "greedy"
	case StageDual:
		return "dual"
	case StageExact:
		return "exact"
	}
	return "unknown"
}

// Decision is the outcome of DistanceAtMost: the threshold verdict plus the
// distance interval [Lo, Hi] the cascade proved along the way (Hi is +Inf
// when no upper bound was established). Lo ≤ Distance ≤ Hi always holds, and
// Leq is false only when Lo > τ, true only when Hi ≤ τ. The interval is
// exact (Lo == Hi) when the solve ran to completion: always at StageExact,
// and at StageRowMin when a shallow miss hardened the interval (see the
// stage comments).
type Decision struct {
	Leq   bool
	Stage Stage
	Lo    float64
	Hi    float64
	// DualArmed records that the decision reached the exact solve with the
	// dual-abort tier armed (the threshold was pinched against the proven
	// lower bound and the caller's policy allowed arming). The metric layer's
	// adaptive tier gate uses it as the attempt denominator for StageDual's
	// live fire rate.
	DualArmed bool
}

// Exact reports whether the cascade computed the exact distance — the
// interval collapsed to a point. True for every completed solve, whichever
// stage spent it.
func (d Decision) Exact() bool { return d.Lo == d.Hi }

// DistanceAtMost decides Distance(a,b) ≤ tau through a cascade of provable
// bounds, running the exact Hungarian solve only when no cheaper stage is
// conclusive: precomputed-embedding bound → row-minima bound → greedy
// upper bound → dual-bounded Hungarian. The cascade order follows the
// measured fire-rate-per-nanosecond on the reference dud workload: the
// embedding tier decides most far pairs from two cached vectors before any
// per-pair work, and the former standalone size and histogram tiers — which
// fired zero times there — are folded into it (LowerBound dominates both).
// Because every ground cost is a non-negative integer, the decision equals
// Distance(a,b) ≤ tau exactly, for every tau.
func (a *StarSig) DistanceAtMost(b *StarSig, tau float64) Decision {
	return a.DistanceAtMostWithLower(b, tau, a.emb.LowerBound(b.emb))
}

// DistanceAtMostWithLower is DistanceAtMost for callers that already hold the
// embedding lower bound of the pair (the metric layer computes it from the
// cached vectors before deciding whether to materialize the signatures, and
// passing it down avoids a second L1 scan per decision). emblo must equal
// a.Embedding().LowerBound(b.Embedding()).
func (a *StarSig) DistanceAtMostWithLower(b *StarSig, tau, emblo float64) Decision {
	return a.decideAtMost(b, tau, emblo, true, true)
}

// DistanceAtMostTiers is DistanceAtMostWithLower under an explicit tier
// policy: tryGreedy enables the greedy upper-bound tier, tryDual the
// dual-abort arming of the exact solve. The lower-bound tiers and the exact
// solve always run; disabling a tier never changes a verdict — a skipped
// greedy success falls through to the exact solve, which proves the same
// answer with Lo == Hi, and an unarmed solve simply completes. The metric
// layer drives the flags from its adaptive tier gates, which retire a tier
// once its measured fire rate on the live workload drops below the tier's
// solve-cost breakeven (see metric's greedyGateMinRate / dualGateMinRate): on
// workloads dominated by far pairs the upper bound almost never lands, and
// arming the abort forfeits the warm-started solve for an exit that never
// fires.
func (a *StarSig) DistanceAtMostTiers(b *StarSig, tau, emblo float64, tryGreedy, tryDual bool) Decision {
	return a.decideAtMost(b, tau, emblo, tryGreedy, tryDual)
}

func (a *StarSig) decideAtMost(b *StarSig, tau, emblo float64, tryGreedy, tryDual bool) Decision {
	n1, n2 := len(a.stars), len(b.stars)
	n := n1
	if n2 > n {
		n = n2
	}
	if n == 0 {
		return Decision{Leq: 0 <= tau, Stage: StageExact, Lo: 0, Hi: 0}
	}
	inf := math.Inf(1)

	// Stage 1 — embedding filter: the max of the size/padding bound and the
	// center+spoke histogram L1 bound, straight off the cached vectors.
	lo := emblo
	if lo > tau {
		return Decision{Leq: false, Stage: StageEmbedding, Lo: lo, Hi: inf}
	}

	// Stages 2+3 — fill the cost matrix, then one fused scan produces both
	// bounds: every row is assigned somewhere, so Σ_i min_j c[i][j] bounds the
	// optimum from below (StageRowMin), while the greedy row-by-row assignment
	// the same cell reads build bounds it from above (StageGreedy). The row
	// bound is checked first — it is admissible, so its verdicts take
	// precedence and the greedy total is discarded when it fires. (The
	// transposed column-minima sum is an equally valid lower bound, but
	// measuring it needs a second, column-major O(n²) scan of the matrix; on
	// the reference workload it decided under 1% of the fills that paid for
	// it, so only the row bound — free inside the greedy scan — is kept.)
	sc := getScratch(n)
	fillCost(sc, &a.pack, &b.pack, n)
	ub, rowSum := inf, 0.0
	if tryGreedy {
		ub, rowSum = sc.solver.UpperBoundAtMostWithMins(sc.cost, tau, sc.rowMin)
	} else {
		rowSum = rowMins(sc, n)
	}
	if rowSum > lo {
		lo = rowSum
	}
	if lo > tau {
		if lo > tau+rowMinDeepMargin {
			putScratch(sc)
			return Decision{Leq: false, Stage: StageRowMin, Lo: lo, Hi: inf}
		}
		// Shallow miss: the bound already proves d > τ, but only barely —
		// under a threshold sweep this pair is near-certain to be re-probed
		// at a nearby higher threshold, where the memoized [lo, ∞) interval
		// fails to decide and the cache promotes the pair to a full fill and
		// solve anyway. The matrix is already paid for; completing the solve
		// now costs only the Hungarian run and settles the pair exactly for
		// every future threshold, where pruning would forfeit this fill and
		// repeat it at the promotion. (Greedy polish and the dual gate are
		// skipped: the optimum is ≥ rowSum > τ, so no upper bound can reach
		// τ.) The stage stays StageRowMin — the row bound decided the verdict;
		// the solve only hardened the interval — with Lo == Hi marking that a
		// full solve was nonetheless spent.
		total := sc.solver.TotalWarm(sc.cost, sc.rowMin)
		putScratch(sc)
		return Decision{Leq: total <= tau, Stage: StageRowMin, Lo: total, Hi: total}
	}
	if ub <= tau {
		// Greedy upper bound: any feasible assignment bounds the optimum from
		// above, so greedy (with swap polish, exiting the moment the running
		// total reaches τ) ≤ τ already proves the answer.
		putScratch(sc)
		return Decision{Leq: true, Stage: StageGreedy, Lo: lo, Hi: ub}
	}

	// The dual tier only pays off when the threshold is pinched against the
	// proven lower bound: its abort needs the optimum over a *prefix* of the
	// rows to exceed τ, which on the reference workload happens exclusively at
	// τ − lo ≤ 1 (measured: every dual fire had lo == τ). Only those
	// decisions get the row reordering the abort depends on — for the rest
	// the sort is a pure tax on the solve's row-processing order — and only
	// those run the solve with the abort armed.
	nearTau := tryDual && tau-lo <= dualGateMargin
	if nearTau {
		// Reorder the matrix rows by descending row minimum (the assignment
		// optimum is permutation-invariant, and integer costs keep the
		// completed total bit-identical). The Hungarian partial dual bound is
		// otherwise back-loaded — early rows grab the globally cheap columns,
		// so the bound crosses τ only in the final rows, exactly where
		// aborting no longer saves anything. Expensive, conflict-prone rows
		// first means a far pair pushes the dual objective past τ within the
		// gated early rows instead.
		sortRowsByMinDesc(sc, n)
	}

	// Stage 4/5 — the exact solve. Pinched decisions (nearTau) run the
	// dual-bounded Hungarian: the early exit is gated to the first half of the
	// rows, because an abort there skips ≥ ~half the solve while a late abort
	// would save almost nothing and forfeit the exact value — under a
	// memoizing cache and a threshold sweep that trades one completed,
	// cacheable solve for a nearly-full partial solve redone at every
	// subsequent threshold (the measured cause of the bounded path losing to
	// the exact baseline on the reference workload). Everything else runs the
	// warm-started solve, reusing the row minima the fused scan already paid
	// for as row-reduction duals (see assignment.TotalWarm) — the cascade's
	// bound computations double as the solver's initialization, an advantage
	// the plain Distance path does not have.
	if nearTau {
		total, aborted := sc.solver.TotalAtMostEarly(sc.cost, tau, n/dualAbortDenominator)
		putScratch(sc)
		if aborted {
			if total > lo {
				lo = total
			}
			return Decision{Leq: false, Stage: StageDual, Lo: lo, Hi: inf, DualArmed: true}
		}
		return Decision{Leq: total <= tau, Stage: StageExact, Lo: total, Hi: total, DualArmed: true}
	}
	total := sc.solver.TotalWarm(sc.cost, sc.rowMin)
	putScratch(sc)
	return Decision{Leq: total <= tau, Stage: StageExact, Lo: total, Hi: total}
}

// dualAbortDenominator gates the StageDual early exit to the first
// n/dualAbortDenominator augmented rows of the Hungarian solve. The partial
// dual objective grows roughly linearly in the augmented rows, so an abort
// inside the first half fires only when τ is well below the true distance
// and saves at least half the solve; beyond that the savings no longer cover
// the cost of losing the exact value (see the stage 4/5 comment in
// DistanceAtMost).
const dualAbortDenominator = 2

// rowMinDeepMargin splits row-minima misses into durable and ephemeral
// prunes. A miss is worth returning early only when the proven lower bound
// clears the threshold by more than the span a sweeping workload walks: the
// memoized interval [lo, ∞) then decides every future probe of the pair, and
// the solve really is saved. A shallower miss would be re-probed undecided at
// the next grid point and promoted to a second fill and solve — measured at
// the reference n=4000 workload, nearly every shallow row-minima prune came
// back as a promotion, turning the "saved" solve into a doubled fill. The
// margin approximates the observed sweep spans (≈ 60 across the reference
// grids) at half, trading a few durable prunes for none of the doubling.
const rowMinDeepMargin = 32

// dualGateMargin selects which decisions arm the dual tier at all: only
// those whose threshold sits within this margin of the proven lower bound.
// A prefix of the rows can only push the dual objective past τ when τ is
// already pinched against the row-minima sum (the prefix optimum exceeds the
// prefix's row minima by at most the assignment conflicts in it); with a
// wide gap the solve always completes, so sorting and checking would be
// wasted work on the far more common near-miss "yes" decisions.
const dualGateMargin = 1

// starScratch is the pooled per-solve arena: the flat cost matrix, the
// per-row minima used to order rows for the dual bound, plus the assignment
// solver's own scratch. One scratch serves one solve at a time; concurrency
// gets distinct instances from the pool.
type starScratch struct {
	flat   []float64
	cost   [][]float64
	rowMin []float64
	solver *assignment.Solver
}

var starPool = sync.Pool{
	New: func() any { return &starScratch{solver: assignment.NewSolver()} },
}

func getScratch(n int) *starScratch {
	sc := starPool.Get().(*starScratch)
	if cap(sc.flat) < n*n {
		sc.flat = make([]float64, n*n)
	}
	sc.flat = sc.flat[:n*n]
	if cap(sc.cost) < n {
		sc.cost = make([][]float64, n)
	}
	sc.cost = sc.cost[:n]
	for i := range sc.cost {
		sc.cost[i] = sc.flat[i*n : (i+1)*n : (i+1)*n]
	}
	if cap(sc.rowMin) < n {
		sc.rowMin = make([]float64, n)
	}
	sc.rowMin = sc.rowMin[:n]
	return sc
}

func putScratch(sc *starScratch) { starPool.Put(sc) }

// fillCost populates the n×n ground-cost matrix for the padded star multisets.
func fillCost(sc *starScratch, p1, p2 *starPack, n int) {
	n1, n2 := len(p1.centers), len(p2.centers)
	for i := 0; i < n; i++ {
		row := sc.cost[i]
		if i >= n1 {
			// Padding row: cost against star j is 1 + degree(j), 0 against a
			// padding column.
			for j := 0; j < n2; j++ {
				row[j] = 1 + float64(p2.off[j+1]-p2.off[j])
			}
			for j := n2; j < n; j++ {
				row[j] = 0
			}
			continue
		}
		ac := p1.centers[i]
		ak := p1.keys[p1.off[i]:p1.off[i+1]]
		for j := 0; j < n2; j++ {
			row[j] = packedPairCost(ac, ak, p2.centers[j], p2.keys[p2.off[j]:p2.off[j+1]])
		}
		for j := n2; j < n; j++ {
			row[j] = 1 + float64(len(ak))
		}
	}
}

// rowMins scans the just-filled (cache-resident) cost matrix for each row's
// minimum, storing it in sc.rowMin and returning the row-minima sum — the
// StageRowMin lower bound. It is the greedy-bypassed counterpart of the fused
// scan in assignment.UpperBoundAtMostWithMins: when the adaptive tier gate has
// retired the upper bound, this dedicated pass runs at memory speed with none
// of greedy's assignment bookkeeping, and the minima still feed the dual-tier
// row ordering and the warm-started solve.
func rowMins(sc *starScratch, n int) (rowSum float64) {
	for i := 0; i < n; i++ {
		row := sc.cost[i]
		m := row[0]
		for _, c := range row[1:] {
			if c < m {
				m = c
			}
		}
		sc.rowMin[i] = m
		rowSum += m
	}
	return rowSum
}

// sortRowsByMinDesc permutes the cost-matrix rows (pointer swaps only) into
// descending row-minimum order, ties kept in original row order. Insertion
// sort: n is small relative to the O(n²·spokes) fill that precedes this, and
// near-sorted inputs (padding rows share one cost) finish in a linear pass.
func sortRowsByMinDesc(sc *starScratch, n int) {
	cost, mins := sc.cost, sc.rowMin
	for i := 1; i < n; i++ {
		r, m := cost[i], mins[i]
		j := i
		for j > 0 && mins[j-1] < m {
			cost[j], mins[j] = cost[j-1], mins[j-1]
			j--
		}
		cost[j], mins[j] = r, m
	}
}

func starDistance(s1, s2 []graph.Star) float64 {
	n := len(s1)
	if len(s2) > n {
		n = len(s2)
	}
	if n == 0 {
		return 0
	}
	p1, p2 := packStars(s1), packStars(s2)
	sc := getScratch(n)
	fillCost(sc, &p1, &p2, n)
	total := sc.solver.Total(sc.cost)
	putScratch(sc)
	return total
}

// packedPairCost is the metric ground cost between two non-padding stars in
// packed form: the discrete metric on center labels plus the multiset
// symmetric difference |A Δ B| of the sorted spoke-key runs.
func packedPairCost(centerA uint32, ka []uint64, centerB uint32, kb []uint64) float64 {
	c := 0.0
	if centerA != centerB {
		c = 1
	}
	i, j, common := 0, 0, 0
	for i < len(ka) && j < len(kb) {
		x, y := ka[i], kb[j]
		if x == y {
			common++
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
	return c + float64(len(ka)+len(kb)-2*common)
}
