package ged

import (
	"graphrep/internal/assignment"
	"graphrep/internal/graph"
)

// StarDistance computes the star-matching distance between g1 and g2: both
// graphs are decomposed into their vertex stars, the star multisets are
// padded with empty stars to equal cardinality, and the minimum-cost star
// assignment (Hungarian algorithm) is returned.
//
// The ground cost between two stars is
//
//	centerCost(s1,s2) + |spokes(s1) Δ spokes(s2)|
//
// with centerCost the discrete metric on center labels and Δ the multiset
// symmetric difference; the cost against the padding star ε is 1 + degree.
// Both pieces are metrics on the extended star space, and the minimum-cost
// matching between equal-cardinality multisets under a metric ground cost is
// itself a metric — so StarDistance satisfies the triangle inequality
// exactly, which Theorems 3–8 of the paper rely on.
//
// StarDistance is the default database distance d(g,g') of this library and
// corresponds to the mapping distance of the paper's GED citation [28].
func StarDistance(g1, g2 *graph.Graph) float64 {
	return starDistance(g1.Stars(), g2.Stars())
}

// StarSig is a precomputed star decomposition, used to amortize the
// decomposition cost when one graph participates in many distance
// computations (as every pivot, centroid, and vantage point does).
type StarSig struct {
	stars []graph.Star
}

// NewStarSig precomputes the star decomposition of g.
func NewStarSig(g *graph.Graph) *StarSig { return &StarSig{stars: g.Stars()} }

// Distance computes the star-matching distance between two signatures.
func (a *StarSig) Distance(b *StarSig) float64 { return starDistance(a.stars, b.stars) }

func starDistance(s1, s2 []graph.Star) float64 {
	n := len(s1)
	if len(s2) > n {
		n = len(s2)
	}
	if n == 0 {
		return 0
	}
	cost := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range cost {
		cost[i], flat = flat[:n:n], flat[n:]
		for j := 0; j < n; j++ {
			cost[i][j] = starPairCost(starAt(s1, i), starAt(s2, j))
		}
	}
	_, total := assignment.Solve(cost)
	return total
}

// starAt returns the i-th star or nil past the end (the padding star ε).
func starAt(s []graph.Star, i int) *graph.Star {
	if i < len(s) {
		return &s[i]
	}
	return nil
}

// starPairCost is the metric ground cost between two (possibly padding)
// stars.
func starPairCost(a, b *graph.Star) float64 {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return 1 + float64(len(b.Spokes))
	case b == nil:
		return 1 + float64(len(a.Spokes))
	}
	c := 0.0
	if a.Center != b.Center {
		c = 1
	}
	return c + float64(spokeSymmetricDifference(a.Spokes, b.Spokes))
}

// spokeSymmetricDifference computes |A Δ B| for the sorted spoke multisets.
func spokeSymmetricDifference(a, b []graph.Spoke) int {
	i, j, common := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch spokeCompare(a[i], b[j]) {
		case 0:
			common++
			i++
			j++
		case -1:
			i++
		default:
			j++
		}
	}
	return len(a) + len(b) - 2*common
}

func spokeCompare(a, b graph.Spoke) int {
	switch {
	case a.EdgeLabel < b.EdgeLabel:
		return -1
	case a.EdgeLabel > b.EdgeLabel:
		return 1
	case a.LeafLabel < b.LeafLabel:
		return -1
	case a.LeafLabel > b.LeafLabel:
		return 1
	}
	return 0
}
