// Package ged implements graph edit distance and its practical relatives:
//
//   - Exact computes exact GED by A* search over vertex mappings. Exponential;
//     intended for small graphs and for validating the bounds.
//   - Bipartite computes the Riesen–Bunke assignment-based upper bound, the
//     standard polynomial-time GED approximation.
//   - StarDistance computes the star-matching distance of Zeng et al.
//     ("Comparing Stars", VLDB 2009) — the approximation the paper itself
//     cites for graph edit distance. StarDistance is a true metric (see
//     star.go), which makes every triangle-inequality-based theorem in the
//     paper (Theorems 3–8) hold exactly when it is used as the database
//     distance d.
//   - LowerBound gives cheap label/size lower bounds on exact GED.
package ged

import "fmt"

// Costs parametrizes the edit operations. All costs must be non-negative.
// For exact GED to be a metric the costs must satisfy the usual conditions:
// substitution costs are symmetric and obey cSub ≤ cDel + cIns.
type Costs struct {
	VSub float64 // substitute a vertex label
	VDel float64 // delete a vertex
	VIns float64 // insert a vertex
	ESub float64 // substitute an edge label
	EDel float64 // delete an edge
	EIns float64 // insert an edge
}

// UniformCosts returns the unit-cost model used throughout the paper's
// experiments: every edit operation costs 1.
func UniformCosts() Costs {
	return Costs{VSub: 1, VDel: 1, VIns: 1, ESub: 1, EDel: 1, EIns: 1}
}

// Validate reports whether the cost model is usable and metric-compatible.
func (c Costs) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"VSub", c.VSub}, {"VDel", c.VDel}, {"VIns", c.VIns},
		{"ESub", c.ESub}, {"EDel", c.EDel}, {"EIns", c.EIns},
	} {
		if v.val < 0 {
			return fmt.Errorf("ged: negative cost %s=%v", v.name, v.val)
		}
	}
	if c.VSub > c.VDel+c.VIns {
		return fmt.Errorf("ged: VSub=%v exceeds VDel+VIns=%v; exact GED would not be a metric", c.VSub, c.VDel+c.VIns)
	}
	if c.ESub > c.EDel+c.EIns {
		return fmt.Errorf("ged: ESub=%v exceeds EDel+EIns=%v; exact GED would not be a metric", c.ESub, c.EDel+c.EIns)
	}
	return nil
}
