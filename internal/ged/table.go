package ged

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Table is a column of per-graph filter embeddings in their encoded form: an
// offset array (one entry per graph plus a terminator) into a shared byte
// blob of records, exactly the two sections the v4 index container stores.
// Records stay encoded — typically as zero-copy views over a mapping — and
// are decoded on demand with At; the structure itself is immutable and safe
// for concurrent readers.
type Table struct {
	offs []uint32
	blob []byte
}

// NewTable wraps an offset array and record blob after validating every
// record boundary: offsets start at zero, never decrease, end exactly at the
// blob's end, and each record's header-implied length matches its offset
// span. At can therefore decode any record without reading outside its span.
// The slices are retained, not copied. It is NewTableDeferred followed
// immediately by Validate.
func NewTable(offs []uint32, blob []byte) (*Table, error) {
	t, err := NewTableDeferred(offs, blob)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// NewTableDeferred is NewTable minus the per-record scan: it checks only the
// O(1) frame invariants (a first offset of zero, a last offset at the blob's
// end) and defers Validate to the caller, keeping a mapped open independent
// of index size. No record may be read — not even Stars — until Validate
// has passed.
func NewTableDeferred(offs []uint32, blob []byte) (*Table, error) {
	if len(offs) == 0 {
		return nil, fmt.Errorf("ged: embedding table has no offsets")
	}
	if offs[0] != 0 {
		return nil, fmt.Errorf("ged: embedding table starts at offset %d, want 0", offs[0])
	}
	if int64(offs[len(offs)-1]) != int64(len(blob)) {
		return nil, fmt.Errorf("ged: embedding table ends at offset %d, blob has %d bytes", offs[len(offs)-1], len(blob))
	}
	return &Table{offs: offs, blob: blob}, nil
}

// Validate runs the O(n) record scan a deferred construction skipped:
// offsets never decrease, and each record's header-implied length matches
// its offset span, so every later access stays inside the blob.
func (t *Table) Validate() error {
	offs, blob := t.offs, t.blob
	for i := 0; i+1 < len(offs); i++ {
		if offs[i+1] < offs[i] {
			return fmt.Errorf("ged: embedding table offset %d decreases (%d after %d)", i+1, offs[i+1], offs[i])
		}
		if err := validateEmbeddingRecord(blob[offs[i]:offs[i+1]]); err != nil {
			return fmt.Errorf("ged: embedding record %d: %w", i, err)
		}
	}
	return nil
}

// NewTableFromEmbeddings encodes a slice of embeddings into table form — the
// save path for indexes whose embeddings live on the heap. The encoding is a
// pure function of the graphs, so the resulting bytes are identical to a
// table loaded from disk for the same database.
func NewTableFromEmbeddings(embs []*Embedding) (*Table, error) {
	offs := make([]uint32, len(embs)+1)
	var buf bytes.Buffer
	for i, e := range embs {
		if e == nil {
			return nil, fmt.Errorf("ged: embedding %d is nil", i)
		}
		if err := e.Encode(&buf); err != nil {
			return nil, fmt.Errorf("ged: encode embedding %d: %w", i, err)
		}
		if buf.Len() != int(uint32(buf.Len())) {
			return nil, fmt.Errorf("ged: embedding table exceeds 4 GiB at record %d", i)
		}
		offs[i+1] = uint32(buf.Len())
	}
	return &Table{offs: offs, blob: buf.Bytes()}, nil
}

// recordLen returns the byte length Encode produces for a record with n
// stars, nc center dimensions, and ns spoke dimensions.
func recordLen(n, nc, ns int) int {
	return 12 + 4*n + 8*nc + 12*ns
}

// validateEmbeddingRecord checks that rec is exactly one well-formed encoded
// embedding: plausible header counts and a length that matches them.
func validateEmbeddingRecord(rec []byte) error {
	if len(rec) < 12 {
		return fmt.Errorf("record of %d bytes is shorter than the header", len(rec))
	}
	n := int(binary.LittleEndian.Uint32(rec[0:]))
	nc := int(binary.LittleEndian.Uint32(rec[4:]))
	ns := int(binary.LittleEndian.Uint32(rec[8:]))
	const implausible = 1 << 28
	if n > implausible || ns > implausible || nc > n {
		return fmt.Errorf("implausible header (n=%d nc=%d ns=%d)", n, nc, ns)
	}
	if want := recordLen(n, nc, ns); len(rec) != want {
		return fmt.Errorf("record of %d bytes, header implies %d", len(rec), want)
	}
	return nil
}

// decodeEmbeddingBytes decodes one validated record. It mirrors
// DecodeEmbedding without the io.Reader plumbing; bounds are guaranteed by
// NewTable's validation.
func decodeEmbeddingBytes(rec []byte) *Embedding {
	n := int(binary.LittleEndian.Uint32(rec[0:]))
	nc := int(binary.LittleEndian.Uint32(rec[4:]))
	ns := int(binary.LittleEndian.Uint32(rec[8:]))
	e := &Embedding{padPrefix: make([]float64, n+1)}
	p := 12
	for i := 0; i < n; i++ {
		e.padPrefix[i+1] = e.padPrefix[i] + float64(binary.LittleEndian.Uint32(rec[p:]))
		p += 4
	}
	if nc > 0 {
		e.centers = make([]embDim, nc)
		for i := range e.centers {
			e.centers[i] = embDim{
				key:   uint64(binary.LittleEndian.Uint32(rec[p:])),
				count: int32(binary.LittleEndian.Uint32(rec[p+4:])),
			}
			p += 8
		}
	}
	if ns > 0 {
		e.spokes = make([]embDim, ns)
		for i := range e.spokes {
			e.spokes[i] = embDim{
				key:   binary.LittleEndian.Uint64(rec[p:]),
				count: int32(binary.LittleEndian.Uint32(rec[p+8:])),
			}
			p += 12
		}
	}
	return e
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.offs) - 1 }

// Stars returns the star (vertex) count of record i without decoding it —
// what load-time cross-checks against the database need.
func (t *Table) Stars(i int) int {
	return int(binary.LittleEndian.Uint32(t.blob[t.offs[i]:]))
}

// At decodes record i into a fresh Embedding.
func (t *Table) At(i int) *Embedding {
	return decodeEmbeddingBytes(t.blob[t.offs[i]:t.offs[i+1]])
}

// Record returns the encoded bytes of record i. Read-only.
func (t *Table) Record(i int) []byte { return t.blob[t.offs[i]:t.offs[i+1]] }

// Offsets returns the offset array (len = Len()+1). Read-only; the
// persistence writer serializes it directly.
func (t *Table) Offsets() []uint32 { return t.offs }

// Blob returns the shared record blob. Read-only.
func (t *Table) Blob() []byte { return t.blob }

// Bytes approximates the table's memory footprint.
func (t *Table) Bytes() int64 { return int64(len(t.blob)) + int64(len(t.offs))*4 }
