package ged

import (
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"graphrep/internal/graph"
)

// Embedding is the precomputed filter vector of one graph: the sorted
// center-label histogram, the sorted spoke-type histogram (one dimension per
// distinct (edge label, leaf label) pair), and the padding-cost prefix sums.
// Its L1-style comparison LowerBound proves d(a,b) > θ for most far pairs
// from the two cached vectors alone — no cost matrix, no assignment work —
// which makes it the first tier of the bounded distance cascade (the
// filter-verify shape of EmbAssi and MSQ-Index, specialised to the star
// metric).
//
// Embeddings are a pure function of the graph, so the per-shard copies the
// index persists are byte-identical to the ones the metric computes lazily,
// and index bytes stay independent of whether the bounded kernel is enabled.
type Embedding struct {
	// padPrefix[k] is the sum of the k smallest padding costs (1 + degree)
	// over this graph's stars: the cheapest possible price of matching k
	// padding stars ε against k distinct stars of this graph.
	padPrefix []float64
	// centers is the center-label histogram, sorted by label.
	centers []embDim
	// spokes is the spoke-type histogram — counts per distinct (edge label,
	// leaf label) pair summed over all stars — sorted by packed key.
	spokes []embDim
}

// embDim is one histogram dimension: a packed key and its multiplicity.
type embDim struct {
	key   uint64
	count int32
}

// spokeKey packs a spoke type into one comparable dimension key.
func spokeKey(s graph.Spoke) uint64 {
	return uint64(s.EdgeLabel)<<32 | uint64(s.LeafLabel)
}

// NewEmbedding computes the filter vector of g.
func NewEmbedding(g *graph.Graph) *Embedding {
	return newEmbeddingFromStars(g.Stars())
}

// newEmbeddingFromStars computes the filter vector from an existing star
// decomposition (NewStarSig reuses its stars instead of re-decomposing).
func newEmbeddingFromStars(stars []graph.Star) *Embedding {
	e := &Embedding{padPrefix: make([]float64, len(stars)+1)}
	pad := make([]float64, len(stars))
	centers := make([]uint64, len(stars))
	nSpokes := 0
	for i := range stars {
		pad[i] = 1 + float64(stars[i].Degree())
		centers[i] = uint64(stars[i].Center)
		nSpokes += stars[i].Degree()
	}
	slices.Sort(centers)
	slices.Sort(pad)
	for i, c := range pad {
		e.padPrefix[i+1] = e.padPrefix[i] + c
	}
	e.centers = countRuns(centers)
	spokes := make([]uint64, 0, nSpokes)
	for i := range stars {
		for _, s := range stars[i].Spokes {
			spokes = append(spokes, spokeKey(s))
		}
	}
	slices.Sort(spokes)
	e.spokes = countRuns(spokes)
	return e
}

// countRuns collapses a sorted key slice into (key, multiplicity) dimensions.
func countRuns(keys []uint64) []embDim {
	if len(keys) == 0 {
		return nil
	}
	dims := make([]embDim, 0, 8)
	run := keys[0]
	n := int32(0)
	for _, k := range keys {
		if k != run {
			dims = append(dims, embDim{key: run, count: n})
			run, n = k, 0
		}
		n++
	}
	return append(dims, embDim{key: run, count: n})
}

// Stars returns the number of stars (vertices) of the embedded graph.
func (e *Embedding) Stars() int { return len(e.padPrefix) - 1 }

// Dims returns the number of histogram dimensions (distinct center labels
// plus distinct spoke types) — the cost of one LowerBound evaluation.
func (e *Embedding) Dims() int { return len(e.centers) + len(e.spokes) }

// Bytes approximates the embedding's memory footprint.
func (e *Embedding) Bytes() int64 {
	return int64(len(e.padPrefix))*8 + int64(len(e.centers)+len(e.spokes))*16
}

// LowerBound returns a proven lower bound on the star distance between the
// two embedded graphs, from the cached vectors alone.
//
// Every matched star pair's ground cost decomposes exactly as
// centerMismatch + |spokes Δ spokes| (a padding pair (s, ε) contributing
// 1 + deg(s) = one mismatch against ε's unique center plus deg(s) spoke
// deletions). Summed over any matching of the padded multisets:
//
//   - at most Σ_l min(cnt_a[l], cnt_b[l]) pairs agree on their center, so the
//     mismatch part is ≥ max(n1,n2) − Σ_l min — the center-histogram bound;
//   - per pair |A Δ B| = Σ_p |cnt_A(p) − cnt_B(p)|, and the coordinate-wise
//     triangle inequality turns the sum over pairs into
//     Σ_p |spokes_a[p] − spokes_b[p]| — the spoke-histogram L1 bound.
//
// The two parts bound disjoint cost components, so their sum is admissible.
// LowerBound additionally takes the max with the size/padding bound (the
// |n1−n2| padding stars must each match a distinct real star, paying at
// least the padPrefix total), which is incomparable to the histogram sum.
// The result subsumes the retired standalone size and histogram cascade
// tiers: it is ≥ both, always.
func (e *Embedding) LowerBound(o *Embedding) float64 {
	n1, n2 := e.Stars(), o.Stars()
	n := n1
	if n2 > n {
		n = n2
	}
	if n == 0 {
		return 0
	}
	var sizeLB float64
	switch {
	case n1 < n2:
		sizeLB = o.padPrefix[n2-n1]
	case n2 < n1:
		sizeLB = e.padPrefix[n1-n2]
	}
	common := int32(0)
	for i, j := 0, 0; i < len(e.centers) && j < len(o.centers); {
		a, b := e.centers[i], o.centers[j]
		switch {
		case a.key == b.key:
			if b.count < a.count {
				common += b.count
			} else {
				common += a.count
			}
			i++
			j++
		case a.key < b.key:
			i++
		default:
			j++
		}
	}
	spokeL1 := int64(0)
	i, j := 0, 0
	for i < len(e.spokes) && j < len(o.spokes) {
		a, b := e.spokes[i], o.spokes[j]
		switch {
		case a.key == b.key:
			d := int64(a.count) - int64(b.count)
			if d < 0 {
				d = -d
			}
			spokeL1 += d
			i++
			j++
		case a.key < b.key:
			spokeL1 += int64(a.count)
			i++
		default:
			spokeL1 += int64(b.count)
			j++
		}
	}
	for ; i < len(e.spokes); i++ {
		spokeL1 += int64(e.spokes[i].count)
	}
	for ; j < len(o.spokes); j++ {
		spokeL1 += int64(o.spokes[j].count)
	}
	lb := float64(int64(n)-int64(common)) + float64(spokeL1)
	if sizeLB > lb {
		lb = sizeLB
	}
	return lb
}

// Encode writes the embedding in the fixed little-endian layout the v3 index
// container stores per shard. The output is a pure function of the embedded
// graph: dimensions are sorted, so re-encoding a decoded embedding
// reproduces the bytes exactly.
func (e *Embedding) Encode(w io.Writer) error {
	n := e.Stars()
	hdr := [3]uint32{uint32(n), uint32(len(e.centers)), uint32(len(e.spokes))}
	if err := binary.Write(w, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	// Pad costs are small integers; store the per-star deltas of the prefix.
	pads := make([]uint32, n)
	for i := 0; i < n; i++ {
		pads[i] = uint32(e.padPrefix[i+1] - e.padPrefix[i])
	}
	if err := binary.Write(w, binary.LittleEndian, pads); err != nil {
		return err
	}
	for _, d := range e.centers {
		rec := [2]uint32{uint32(d.key), uint32(d.count)}
		if err := binary.Write(w, binary.LittleEndian, rec[:]); err != nil {
			return err
		}
	}
	for _, d := range e.spokes {
		if err := binary.Write(w, binary.LittleEndian, d.key); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, d.count); err != nil {
			return err
		}
	}
	return nil
}

// DecodeEmbedding reads one embedding written by Encode.
func DecodeEmbedding(r io.Reader) (*Embedding, error) {
	var hdr [3]uint32
	if err := binary.Read(r, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("ged: read embedding header: %w", err)
	}
	n, nc, ns := int(hdr[0]), int(hdr[1]), int(hdr[2])
	const implausible = 1 << 28
	if n > implausible || ns > implausible || nc > n {
		return nil, fmt.Errorf("ged: implausible embedding header %v", hdr)
	}
	e := &Embedding{padPrefix: make([]float64, n+1)}
	pads := make([]uint32, n)
	if err := binary.Read(r, binary.LittleEndian, pads); err != nil {
		return nil, fmt.Errorf("ged: read embedding pads: %w", err)
	}
	for i, p := range pads {
		e.padPrefix[i+1] = e.padPrefix[i] + float64(p)
	}
	if nc > 0 {
		e.centers = make([]embDim, nc)
		for i := range e.centers {
			var rec [2]uint32
			if err := binary.Read(r, binary.LittleEndian, rec[:]); err != nil {
				return nil, fmt.Errorf("ged: read embedding centers: %w", err)
			}
			e.centers[i] = embDim{key: uint64(rec[0]), count: int32(rec[1])}
		}
	}
	if ns > 0 {
		e.spokes = make([]embDim, ns)
		for i := range e.spokes {
			if err := binary.Read(r, binary.LittleEndian, &e.spokes[i].key); err != nil {
				return nil, fmt.Errorf("ged: read embedding spokes: %w", err)
			}
			if err := binary.Read(r, binary.LittleEndian, &e.spokes[i].count); err != nil {
				return nil, fmt.Errorf("ged: read embedding spokes: %w", err)
			}
		}
	}
	return e, nil
}
