package div

import (
	"math/rand"
	"testing"

	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

func randDB(t testing.TB, n int, seed int64) (*graph.Database, metric.Metric) {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(6)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(u, v, 0)
				}
			}
		}
		b.SetFeatures([]float64{rng.Float64()})
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func allRelevant([]float64) bool { return true }

func TestTopKSeparationInvariant(t *testing.T) {
	db, m := randDB(t, 60, 1)
	rs := metric.NewLinearScan(db.Len(), m)
	for _, sep := range []float64{4, 8} {
		res, err := TopK(db, rs, allRelevant, 4, sep, 10)
		if err != nil {
			t.Fatalf("TopK(sep=%v): %v", sep, err)
		}
		if len(res.Answer) == 0 {
			t.Fatalf("empty answer at sep=%v", sep)
		}
		if !Separated(m, res.Answer, sep) {
			t.Errorf("answer violates %v-separation", sep)
		}
		if len(res.Scores) != len(res.Answer) {
			t.Errorf("scores/answer length mismatch")
		}
	}
}

func TestTopKScoresNonIncreasing(t *testing.T) {
	db, m := randDB(t, 60, 2)
	rs := metric.NewLinearScan(db.Len(), m)
	res, err := TopK(db, rs, allRelevant, 4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i] > res.Scores[i-1] {
			t.Errorf("scores increased: %v", res.Scores)
		}
	}
}

// DIV(2θ) can only be more restrictive than DIV(θ): its answer under the
// same budget is no larger.
func TestStricterSeparationShrinksAnswer(t *testing.T) {
	db, m := randDB(t, 80, 3)
	rs := metric.NewLinearScan(db.Len(), m)
	lo, err := TopK(db, rs, allRelevant, 4, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := TopK(db, rs, allRelevant, 4, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(hi.Answer) > len(lo.Answer) {
		t.Errorf("DIV(2θ) answer %d larger than DIV(θ) %d", len(hi.Answer), len(lo.Answer))
	}
}

// Table 4's headline: the REP greedy achieves at least the representative
// power of DIV under the same budget (greedy directly maximizes π; DIV
// maximizes a surrogate).
func TestREPDominatesDIVOnPower(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		db, m := randDB(t, 70, 10+seed)
		rs := metric.NewLinearScan(db.Len(), m)
		theta, k := 4.0, 8
		rep, err := core.BaselineGreedy(db, m, core.Query{Relevance: allRelevant, Theta: theta, K: k})
		if err != nil {
			t.Fatal(err)
		}
		dv, err := TopK(db, rs, allRelevant, theta, theta, k)
		if err != nil {
			t.Fatal(err)
		}
		rel := core.Relevant(db, allRelevant)
		divPower, _ := core.Power(db, m, rel, dv.Answer, theta)
		if rep.Power < divPower-1e-9 {
			t.Errorf("seed %d: REP π=%v < DIV π=%v", seed, rep.Power, divPower)
		}
	}
}

func TestTopKEmptyAndErrors(t *testing.T) {
	db, m := randDB(t, 10, 4)
	rs := metric.NewLinearScan(db.Len(), m)
	res, err := TopK(db, rs, func([]float64) bool { return false }, 4, 4, 5)
	if err != nil || len(res.Answer) != 0 {
		t.Errorf("empty relevant: res=%+v err=%v", res, err)
	}
	if _, err := TopK(db, rs, nil, 4, 4, 5); err == nil {
		t.Error("nil relevance accepted")
	}
	if _, err := TopK(db, rs, allRelevant, -1, 4, 5); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := TopK(db, rs, allRelevant, 4, 4, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
