package div

import (
	"fmt"
	"sort"

	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// alloc is one feasible in-component selection: j independent picks with
// their total score.
type alloc struct {
	score int
	picks []int // positions in the relevant list
}

// TopKCut runs the div-cut algorithm of Qin et al. — the variant the paper
// benchmarks ("we use C-Tree to compute the 'diversity-graph', which is
// subsequently used by the 'div-cut' algorithm"). The diversity graph over
// the relevant objects (edges between objects ≤ minSep apart) is cut into
// connected components; within each component the maximum-score independent
// set of every size is found exactly by branch-and-bound (components larger
// than exactLimit fall back to greedy-by-score); a knapsack DP across
// components assembles the best global budget allocation.
//
// Scores are |N_θ(g) ∩ L_q| as in TopK; minSep is θ for DIV(θ) or 2θ for
// DIV(2θ). exactLimit ≤ 0 selects a default of 18.
func TopKCut(db *graph.Database, rs metric.RangeSearcher, relevance core.Relevance, theta, minSep float64, k, exactLimit int) (*Result, error) {
	if relevance == nil {
		return nil, fmt.Errorf("div: nil relevance function")
	}
	if theta < 0 || minSep < 0 {
		return nil, fmt.Errorf("div: negative threshold")
	}
	if k <= 0 {
		return nil, fmt.Errorf("div: non-positive k %d", k)
	}
	if exactLimit <= 0 {
		exactLimit = 18
	}
	rel := core.Relevant(db, relevance)
	res := &Result{}
	if len(rel) == 0 {
		return res, nil
	}
	relPos := make(map[graph.ID]int, len(rel))
	for i, id := range rel {
		relPos[id] = i
	}
	// Static scores and the diversity graph, via range queries.
	scores := make([]int, len(rel))
	sep := make([][]int, len(rel))
	for i, id := range rel {
		for _, hit := range rs.Range(id, theta) {
			if _, ok := relPos[hit]; ok {
				scores[i]++
			}
		}
		for _, hit := range rs.Range(id, minSep) {
			if j, ok := relPos[hit]; ok && j != i {
				sep[i] = append(sep[i], j)
			}
		}
	}
	// Cut: connected components of the diversity graph.
	components := connectedComponents(len(rel), sep)
	// Per-component tables: table[j] = best selection of exactly j picks.
	perComp := make([][]alloc, len(components))
	for ci, members := range components {
		maxJ := len(members)
		if maxJ > k {
			maxJ = k
		}
		table := make([]alloc, maxJ+1)
		for j := 1; j <= maxJ; j++ {
			table[j].score = -1
		}
		if len(members) <= exactLimit {
			exactIndependent(members, sep, scores, table)
		} else {
			greedyIndependent(members, sep, scores, table)
		}
		perComp[ci] = table
	}
	// Knapsack DP across components, carrying explicit pick sets (budgets
	// are small, so this stays cheap).
	dp := make([]alloc, k+1)
	for j := 1; j <= k; j++ {
		dp[j].score = -1
	}
	for _, table := range perComp {
		next := make([]alloc, k+1)
		for j := range next {
			next[j].score = -1
		}
		for used := 0; used <= k; used++ {
			if dp[used].score < 0 {
				continue
			}
			for j, a := range table {
				if a.score < 0 || used+j > k {
					continue
				}
				if s := dp[used].score + a.score; s > next[used+j].score {
					picks := make([]int, 0, len(dp[used].picks)+len(a.picks))
					picks = append(picks, dp[used].picks...)
					picks = append(picks, a.picks...)
					next[used+j] = alloc{score: s, picks: picks}
				}
			}
		}
		dp = next
	}
	best := 0
	for j := 1; j <= k; j++ {
		if dp[j].score > dp[best].score {
			best = j
		}
	}
	picks := append([]int(nil), dp[best].picks...)
	sort.Slice(picks, func(a, b int) bool {
		if scores[picks[a]] != scores[picks[b]] {
			return scores[picks[a]] > scores[picks[b]]
		}
		return rel[picks[a]] < rel[picks[b]]
	})
	for _, i := range picks {
		res.Answer = append(res.Answer, rel[i])
		res.Scores = append(res.Scores, scores[i])
	}
	return res, nil
}

// connectedComponents returns the vertex sets of the diversity graph's
// components, each sorted ascending.
func connectedComponents(n int, adj [][]int) [][]int {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var components [][]int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		var members []int
		stack := []int{i}
		comp[i] = len(components)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, w := range adj[v] {
				if comp[w] < 0 {
					comp[w] = len(components)
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(members)
		components = append(components, members)
	}
	return components
}

// exactIndependent fills table[j] with the maximum-score independent set of
// every size j within the component, by DFS over members in order with
// conflict counting.
func exactIndependent(members []int, sep [][]int, scores []int, table []alloc) {
	pos := make(map[int]int, len(members))
	for i, v := range members {
		pos[v] = i
	}
	blocked := make([]int, len(members))
	var picks []int
	var dfs func(start, total int)
	dfs = func(start, total int) {
		if j := len(picks); j > 0 && j < len(table) && total > table[j].score {
			table[j] = alloc{score: total, picks: append([]int(nil), picks...)}
		}
		if len(picks) >= len(table)-1 {
			return
		}
		for i := start; i < len(members); i++ {
			if blocked[i] > 0 {
				continue
			}
			v := members[i]
			picks = append(picks, v)
			for _, w := range sep[v] {
				if p, ok := pos[w]; ok {
					blocked[p]++
				}
			}
			dfs(i+1, total+scores[v])
			for _, w := range sep[v] {
				if p, ok := pos[w]; ok {
					blocked[p]--
				}
			}
			picks = picks[:len(picks)-1]
		}
	}
	dfs(0, 0)
}

// greedyIndependent fills table with greedy-by-score prefix selections for
// components too large for the exact search.
func greedyIndependent(members []int, sep [][]int, scores []int, table []alloc) {
	order := append([]int(nil), members...)
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	blocked := make(map[int]bool)
	var picks []int
	total := 0
	for _, v := range order {
		if len(picks) >= len(table)-1 {
			break
		}
		if blocked[v] {
			continue
		}
		picks = append(picks, v)
		total += scores[v]
		for _, w := range sep[v] {
			blocked[w] = true
		}
		table[len(picks)] = alloc{score: total, picks: append([]int(nil), picks...)}
	}
}
