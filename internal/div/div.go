// Package div implements the DIV diversified top-k baseline (Qin, Yu &
// Chang, "Diversifying top-k results", PVLDB 2012) as configured in the
// paper's comparison: score(g) = π_θ(g), the singleton representative power,
// with the constraint that answer objects are pairwise more than minSep
// apart. The paper evaluates two settings: DIV(θ), the original model
// (minSep = θ), and DIV(2θ), the stricter separation that would make the
// scores genuinely independent (minSep = 2θ, Theorem 3).
//
// DIV first materializes the "diversity graph" — for every relevant object
// its neighbors within minSep — through a range index (C-tree in the paper's
// setup), then greedily takes the highest-scoring object compatible with the
// separation constraint. Because DIV treats scores as mutually independent
// it never re-computes them as the answer grows; that is exactly the
// modeling gap (§3.2) that Table 4 quantifies.
package div

import (
	"fmt"
	"sort"

	"graphrep/internal/core"
	"graphrep/internal/graph"
	"graphrep/internal/metric"
)

// Result is a DIV answer.
type Result struct {
	// Answer lists the selected objects in score order.
	Answer []graph.ID
	// Scores carries |N_θ(g) ∩ L_q| for each answer object (its static
	// score under the representative-power assignment).
	Scores []int
}

// TopK runs the DIV baseline. theta defines the scoring neighborhoods
// N_θ(g); minSep is the separation constraint (θ for DIV(θ), 2θ for
// DIV(2θ)); k is the budget.
func TopK(db *graph.Database, rs metric.RangeSearcher, relevance core.Relevance, theta, minSep float64, k int) (*Result, error) {
	if relevance == nil {
		return nil, fmt.Errorf("div: nil relevance function")
	}
	if theta < 0 || minSep < 0 {
		return nil, fmt.Errorf("div: negative threshold")
	}
	if k <= 0 {
		return nil, fmt.Errorf("div: non-positive k %d", k)
	}
	rel := core.Relevant(db, relevance)
	res := &Result{}
	if len(rel) == 0 {
		return res, nil
	}
	relPos := make(map[graph.ID]int, len(rel))
	for i, id := range rel {
		relPos[id] = i
	}
	// Static scores |N_θ(g) ∩ L_q| and the diversity graph at minSep, both
	// through range queries (the online cost §3.2 points out).
	scoreNbrs := make([][]int, len(rel))
	sepNbrs := make([][]int, len(rel))
	for i, id := range rel {
		for _, hit := range rs.Range(id, theta) {
			if j, ok := relPos[hit]; ok {
				scoreNbrs[i] = append(scoreNbrs[i], j)
			}
		}
		if minSep == theta {
			sepNbrs[i] = scoreNbrs[i]
		} else {
			for _, hit := range rs.Range(id, minSep) {
				if j, ok := relPos[hit]; ok {
					sepNbrs[i] = append(sepNbrs[i], j)
				}
			}
		}
	}
	// Greedy by static score, constrained by separation; ties toward the
	// lower graph ID for determinism.
	order := make([]int, len(rel))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := len(scoreNbrs[order[a]]), len(scoreNbrs[order[b]])
		if sa != sb {
			return sa > sb
		}
		return rel[order[a]] < rel[order[b]]
	})
	blocked := make([]bool, len(rel))
	for _, i := range order {
		if len(res.Answer) >= k {
			break
		}
		if blocked[i] {
			continue
		}
		res.Answer = append(res.Answer, rel[i])
		res.Scores = append(res.Scores, len(scoreNbrs[i]))
		for _, j := range sepNbrs[i] {
			blocked[j] = true
		}
	}
	return res, nil
}

// Separated verifies the DIV separation invariant: all answer objects
// pairwise more than minSep apart. Intended for tests.
func Separated(m metric.Metric, answer []graph.ID, minSep float64) bool {
	for i := 0; i < len(answer); i++ {
		for j := i + 1; j < len(answer); j++ {
			if m.Distance(answer[i], answer[j]) <= minSep {
				return false
			}
		}
	}
	return true
}
