package div

import (
	"testing"

	"graphrep/internal/core"
	"graphrep/internal/metric"
)

func TestTopKCutSeparationAndScore(t *testing.T) {
	db, m := randDB(t, 70, 20)
	rs := metric.NewLinearScan(db.Len(), m)
	theta := 4.0
	for _, sep := range []float64{theta, 2 * theta} {
		cut, err := TopKCut(db, rs, allRelevant, theta, sep, 8, 0)
		if err != nil {
			t.Fatalf("TopKCut(sep=%v): %v", sep, err)
		}
		if len(cut.Answer) == 0 {
			t.Fatalf("empty answer at sep=%v", sep)
		}
		if !Separated(m, cut.Answer, sep) {
			t.Errorf("div-cut answer violates %v-separation", sep)
		}
		// div-cut optimizes the same objective the greedy approximates: its
		// total score must never be lower.
		greedy, err := TopK(db, rs, allRelevant, theta, sep, 8)
		if err != nil {
			t.Fatal(err)
		}
		if sum(cut.Scores) < sum(greedy.Scores) {
			t.Errorf("sep=%v: div-cut score %d < greedy score %d", sep, sum(cut.Scores), sum(greedy.Scores))
		}
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestTopKCutRespectsBudget(t *testing.T) {
	db, m := randDB(t, 60, 21)
	rs := metric.NewLinearScan(db.Len(), m)
	for _, k := range []int{1, 3, 10} {
		res, err := TopKCut(db, rs, allRelevant, 4, 4, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answer) > k {
			t.Errorf("k=%d: answer size %d", k, len(res.Answer))
		}
	}
}

func TestTopKCutGreedyFallback(t *testing.T) {
	// exactLimit=1 forces the greedy path on every non-trivial component.
	db, m := randDB(t, 50, 22)
	rs := metric.NewLinearScan(db.Len(), m)
	res, err := TopKCut(db, rs, allRelevant, 4, 4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answer) == 0 {
		t.Fatal("empty answer under fallback")
	}
	if !Separated(m, res.Answer, 4) {
		t.Error("fallback answer violates separation")
	}
}

func TestTopKCutErrorsAndEmpty(t *testing.T) {
	db, m := randDB(t, 10, 23)
	rs := metric.NewLinearScan(db.Len(), m)
	if _, err := TopKCut(db, rs, nil, 4, 4, 3, 0); err == nil {
		t.Error("nil relevance accepted")
	}
	if _, err := TopKCut(db, rs, allRelevant, -1, 4, 3, 0); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := TopKCut(db, rs, allRelevant, 4, 4, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	res, err := TopKCut(db, rs, func([]float64) bool { return false }, 4, 4, 3, 0)
	if err != nil || len(res.Answer) != 0 {
		t.Errorf("empty relevant: %+v, %v", res, err)
	}
}

func BenchmarkTopKCut(b *testing.B) {
	db, m := randDB(nil, 80, 99)
	rs := metric.NewLinearScan(db.Len(), m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TopKCut(db, rs, allRelevant, 4, 4, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// On tiny instances, brute-force the maximum-score independent set and
// confirm div-cut's exact path matches it.
func TestTopKCutExactOptimality(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		db, m := randDB(t, 12, 30+seed)
		rs := metric.NewLinearScan(db.Len(), m)
		theta, k := 4.0, 3
		cut, err := TopKCut(db, rs, allRelevant, theta, theta, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		rel := core.Relevant(db, allRelevant)
		// Brute force over all subsets of size ≤ k.
		score := func(i int) int {
			s := 0
			for _, j := range rel {
				if m.Distance(rel[i], j) <= theta {
					s++
				}
			}
			return s
		}
		best := 0
		var rec func(start int, chosen []int, total int)
		rec = func(start int, chosen []int, total int) {
			if total > best {
				best = total
			}
			if len(chosen) == k {
				return
			}
			for i := start; i < len(rel); i++ {
				ok := true
				for _, c := range chosen {
					if m.Distance(rel[i], rel[c]) <= theta {
						ok = false
						break
					}
				}
				if ok {
					rec(i+1, append(chosen, i), total+score(i))
				}
			}
		}
		rec(0, nil, 0)
		if got := sum(cut.Scores); got != best {
			t.Errorf("seed %d: div-cut score %d, optimal %d", seed, got, best)
		}
	}
}
