package nbtree

import (
	"fmt"

	"graphrep/internal/graph"
)

// Flat is the NB-Tree as parallel arrays indexed by node index — the
// representation the v4 index format stores and the query path navigates.
// First-child/next-sibling links replace child pointer slices; both links
// point strictly forward (children always have larger indices than their
// parent, for preorder-built and insert-appended trees alike), so every walk
// terminates. A Flat built over mapped sections serves queries directly from
// the mapping; one built by Flatten aliases nothing.
//
// All slices have identical length. Leaves[i] is 1 for single-graph leaves,
// 0 otherwise; FirstChild/NextSibling/Parents use -1 for "none".
type Flat struct {
	Centroids   []graph.ID
	Parents     []int32
	FirstChild  []int32
	NextSibling []int32
	Sizes       []int32
	Leaves      []byte
	Radii       []float64
	Diameters   []float64
	stats       BuildStats
}

// Flatten converts the pointer tree into its array form. The result passes
// NewFlat validation and shares no memory with the tree.
func (t *Tree) Flatten() *Flat {
	n := len(t.nodes)
	f := &Flat{
		Centroids:   make([]graph.ID, n),
		Parents:     make([]int32, n),
		FirstChild:  make([]int32, n),
		NextSibling: make([]int32, n),
		Sizes:       make([]int32, n),
		Leaves:      make([]byte, n),
		Radii:       make([]float64, n),
		Diameters:   make([]float64, n),
		stats:       t.stats,
	}
	// Links default to -1 up front: parents have smaller indices than their
	// children, so setting the default inside the main loop would clobber
	// sibling links the parent's iteration already wrote.
	for i := range f.FirstChild {
		f.FirstChild[i] = -1
		f.NextSibling[i] = -1
	}
	for i, nd := range t.nodes {
		f.Centroids[i] = nd.Centroid
		f.Sizes[i] = int32(nd.Size)
		f.Radii[i] = nd.Radius
		f.Diameters[i] = nd.Diameter
		if nd.Leaf {
			f.Leaves[i] = 1
		}
		if nd.Parent != nil {
			f.Parents[i] = int32(nd.Parent.Idx)
		} else {
			f.Parents[i] = -1
		}
		if len(nd.Children) > 0 {
			f.FirstChild[i] = int32(nd.Children[0].Idx)
			for j := 0; j+1 < len(nd.Children); j++ {
				f.NextSibling[nd.Children[j].Idx] = int32(nd.Children[j+1].Idx)
			}
		}
	}
	return f
}

// NewFlat assembles a Flat from its component arrays (typically zero-copy
// views over a v4 index section) after validating every structural invariant
// a query walk relies on: equal lengths, a single root at index 0, parent
// links that point strictly backward, child/sibling links that point strictly
// forward to nodes with the right parent, every non-root node appearing in
// exactly one child chain, leaf flags consistent with fan-out, and sizes that
// sum bottom-up. Centroid range checks are the caller's job (the valid ID
// range is not known here). stats.Nodes and stats.Leaves are recomputed, not
// trusted. The arrays are retained, not copied.
func NewFlat(centroids []graph.ID, parents, firstChild, nextSibling, sizes []int32, leaves []byte, radii, diameters []float64, stats BuildStats) (*Flat, error) {
	leafCount := 0
	for _, l := range leaves {
		if l == 1 {
			leafCount++
		}
	}
	stats.Leaves = leafCount
	f, err := NewFlatDeferred(centroids, parents, firstChild, nextSibling, sizes, leaves, radii, diameters, stats)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// NewFlatDeferred is NewFlat minus the O(n) structural walk: it checks only
// the array lengths and the root's parent, records stats (whose Leaves field
// is the caller's claim, e.g. from persisted metadata), and defers Validate
// to the caller. The tree must not be navigated until Validate — which also
// checks the claimed leaf count — has passed.
func NewFlatDeferred(centroids []graph.ID, parents, firstChild, nextSibling, sizes []int32, leaves []byte, radii, diameters []float64, stats BuildStats) (*Flat, error) {
	n := len(centroids)
	if n == 0 {
		return nil, fmt.Errorf("nbtree: flat tree has no nodes")
	}
	if len(parents) != n || len(firstChild) != n || len(nextSibling) != n ||
		len(sizes) != n || len(leaves) != n || len(radii) != n || len(diameters) != n {
		return nil, fmt.Errorf("nbtree: flat tree arrays disagree on length (%d/%d/%d/%d/%d/%d/%d/%d)",
			n, len(parents), len(firstChild), len(nextSibling), len(sizes), len(leaves), len(radii), len(diameters))
	}
	if parents[0] != -1 {
		return nil, fmt.Errorf("nbtree: root parent is %d, want -1", parents[0])
	}
	stats.Nodes = n
	return &Flat{
		Centroids:   centroids,
		Parents:     parents,
		FirstChild:  firstChild,
		NextSibling: nextSibling,
		Sizes:       sizes,
		Leaves:      leaves,
		Radii:       radii,
		Diameters:   diameters,
		stats:       stats,
	}, nil
}

// Validate runs the O(n) structural walk a deferred construction skipped:
// parent/child/sibling links in range and acyclic (strictly forward), leaf
// flags boolean and consistent with the links, every non-root node in
// exactly one child chain under its recorded parent, sizes summing
// bottom-up, and the claimed leaf count matching the actual one. After
// Validate succeeds, every navigation a query performs stays in bounds.
func (f *Flat) Validate() error {
	n := len(f.Centroids)
	parents, firstChild, nextSibling := f.Parents, f.FirstChild, f.NextSibling
	sizes, leaves := f.Sizes, f.Leaves
	leafCount := 0
	for i := 0; i < n; i++ {
		if i > 0 && (parents[i] < 0 || int(parents[i]) >= i) {
			return fmt.Errorf("nbtree: node %d has parent %d (must be in [0,%d))", i, parents[i], i)
		}
		switch leaves[i] {
		case 0:
			if firstChild[i] == -1 {
				return fmt.Errorf("nbtree: non-leaf node %d has no children", i)
			}
		case 1:
			leafCount++
			if firstChild[i] != -1 {
				return fmt.Errorf("nbtree: leaf node %d has a child", i)
			}
			if sizes[i] != 1 {
				return fmt.Errorf("nbtree: leaf node %d has size %d", i, sizes[i])
			}
		default:
			return fmt.Errorf("nbtree: node %d has leaf flag %d", i, leaves[i])
		}
		if c := firstChild[i]; c != -1 && (int(c) <= i || int(c) >= n) {
			return fmt.Errorf("nbtree: node %d first child %d out of range (%d,%d)", i, c, i, n)
		}
		if s := nextSibling[i]; s != -1 && (int(s) <= i || int(s) >= n) {
			return fmt.Errorf("nbtree: node %d next sibling %d out of range (%d,%d)", i, s, i, n)
		}
	}
	if leafCount != f.stats.Leaves {
		return fmt.Errorf("nbtree: flat tree has %d leaves, metadata claims %d", leafCount, f.stats.Leaves)
	}
	// Every non-root node must appear in exactly one child chain, under its
	// recorded parent, and sizes must sum bottom-up. Chains move strictly
	// forward (checked above), so each walk terminates.
	inChain := make([]bool, n)
	for i := 0; i < n; i++ {
		sum := int32(0)
		for c := firstChild[i]; c != -1; c = nextSibling[c] {
			if parents[c] != int32(i) {
				return fmt.Errorf("nbtree: node %d is in the child chain of %d but has parent %d", c, i, parents[c])
			}
			if inChain[c] {
				return fmt.Errorf("nbtree: node %d appears in two child chains", c)
			}
			inChain[c] = true
			sum += sizes[c]
		}
		if leaves[i] == 0 && sum != sizes[i] {
			return fmt.Errorf("nbtree: node %d has size %d but children sum to %d", i, sizes[i], sum)
		}
	}
	for i := 1; i < n; i++ {
		if !inChain[i] {
			return fmt.Errorf("nbtree: node %d is in no child chain", i)
		}
	}
	return nil
}

// Len returns the number of nodes.
func (f *Flat) Len() int { return len(f.Centroids) }

// Leaf reports whether node i is a single-graph leaf.
func (f *Flat) Leaf(i int32) bool { return f.Leaves[i] == 1 }

// Stats returns the construction statistics carried with the tree.
func (f *Flat) Stats() BuildStats { return f.stats }

// Bytes approximates the memory footprint of the flat arrays.
func (f *Flat) Bytes() int64 {
	n := int64(f.Len())
	return n * (4 + 4 + 4 + 4 + 4 + 1 + 8 + 8)
}

// Rebuild reconstructs the pointer tree. Children are appended in ascending
// node index, which reproduces the original child order for both
// preorder-built trees and trees grown by Insert (appended leaves always get
// the largest index). Used to thaw a mapped tree before mutation.
func (f *Flat) Rebuild() *Tree {
	n := f.Len()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &Node{
			Idx:      i,
			Centroid: f.Centroids[i],
			Radius:   f.Radii[i],
			Diameter: f.Diameters[i],
			Size:     int(f.Sizes[i]),
			Leaf:     f.Leaves[i] == 1,
		}
	}
	for i := 0; i < n; i++ {
		if p := f.Parents[i]; p != -1 {
			parent := nodes[p]
			nodes[i].Parent = parent
			parent.Children = append(parent.Children, nodes[i])
		}
	}
	return &Tree{root: nodes[0], nodes: nodes, stats: f.stats}
}
