package nbtree

import (
	"encoding/gob"
	"fmt"
	"io"

	"graphrep/internal/graph"
)

// nodeRecord is the flat serialized form of a Node; parent/child pointers
// are rebuilt from ParentIdx on load. Records are stored in DFS preorder, so
// a parent always precedes its children.
type nodeRecord struct {
	Centroid  graph.ID
	Radius    float64
	Diameter  float64
	ParentIdx int // -1 for the root
	Size      int
	Leaf      bool
}

type treeSnapshot struct {
	Records []nodeRecord
	Stats   BuildStats
}

// Encode serializes the tree (gob).
func (t *Tree) Encode(w io.Writer) error {
	recs := make([]nodeRecord, len(t.nodes))
	for i, n := range t.nodes {
		parent := -1
		if n.Parent != nil {
			parent = n.Parent.Idx
		}
		recs[i] = nodeRecord{
			Centroid: n.Centroid, Radius: n.Radius, Diameter: n.Diameter,
			ParentIdx: parent, Size: n.Size, Leaf: n.Leaf,
		}
	}
	return gob.NewEncoder(w).Encode(treeSnapshot{Records: recs, Stats: t.stats})
}

// ReadTree deserializes a tree written by Encode.
func ReadTree(r io.Reader) (*Tree, error) {
	var s treeSnapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nbtree: decode: %w", err)
	}
	if len(s.Records) == 0 {
		return nil, fmt.Errorf("nbtree: corrupt snapshot: no nodes")
	}
	t := &Tree{nodes: make([]*Node, len(s.Records)), stats: s.Stats}
	for i, rec := range s.Records {
		t.nodes[i] = &Node{
			Idx: i, Centroid: rec.Centroid, Radius: rec.Radius,
			Diameter: rec.Diameter, Size: rec.Size, Leaf: rec.Leaf,
		}
		switch {
		case rec.ParentIdx == -1:
			if i != 0 {
				return nil, fmt.Errorf("nbtree: corrupt snapshot: extra root at %d", i)
			}
			t.root = t.nodes[0]
		case rec.ParentIdx < 0 || rec.ParentIdx >= i:
			return nil, fmt.Errorf("nbtree: corrupt snapshot: node %d has parent %d", i, rec.ParentIdx)
		default:
			p := t.nodes[rec.ParentIdx]
			t.nodes[i].Parent = p
			p.Children = append(p.Children, t.nodes[i])
		}
	}
	if t.root == nil {
		return nil, fmt.Errorf("nbtree: corrupt snapshot: no root")
	}
	return t, nil
}
