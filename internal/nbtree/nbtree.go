// Package nbtree implements the NB-Tree of §6.4: a top-down hierarchical
// clustering of the graph database. Disjoint clusters are formed recursively
// — at every level up to b pivots are chosen farthest-first, every graph is
// assigned to its closest pivot, and the process recurses until clusters
// shrink below b. Leaves are single graphs; every non-leaf node stores the
// centroid, radius, and diameter of its cluster, the quantities Theorems 6–8
// need for batch updates of representative power.
//
// Construction can be accelerated with vantage orderings: the vantage lower
// bound discards pivot/graph pairs that cannot improve the current closest
// pivot, so exact distances are computed for only a small minority of pairs
// (the "<1% of candidate pairs" effect behind Fig. 6(k)).
package nbtree

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/pool"
	"graphrep/internal/vantage"
)

// Options configures tree construction.
type Options struct {
	// Branching is the maximum fan-out b (≥ 2). The paper uses 40 on disk
	// and recommends small b for memory-resident trees.
	Branching int
	// VO optionally supplies vantage orderings for construction pruning.
	VO *vantage.Ordering
	// Workers bounds the goroutines used for the partition distance fills
	// (≤ 0 means GOMAXPROCS). Pivot selection stays single-threaded on the
	// rng, and every parallel fill writes to pre-assigned slots, so the tree
	// is identical for any worker count.
	Workers int
}

// Node is one cluster in the NB-Tree. Leaves represent single graphs
// (Radius = Diameter = 0, Centroid = the graph itself).
type Node struct {
	// Idx is the node's position in Tree.Nodes(), assigned in DFS preorder.
	// Query-time state (π̂-vectors) is kept in arrays indexed by Idx.
	Idx      int
	Centroid graph.ID
	Radius   float64
	Diameter float64
	Children []*Node
	Parent   *Node
	// Size is the number of graphs in the subtree.
	Size int
	// Leaf marks single-graph nodes; for those Centroid is the graph.
	Leaf bool
}

// Tree is an immutable NB-Tree over a database.
type Tree struct {
	root  *Node
	nodes []*Node
	stats BuildStats
}

// BuildStats reports how much work construction did.
type BuildStats struct {
	// ExactDistances is the number of exact distance computations issued.
	ExactDistances int64
	// PrunedDistances counts pivot/graph pairs discarded by the vantage
	// lower bound without an exact computation.
	PrunedDistances int64
	// Nodes and Leaves count tree nodes.
	Nodes, Leaves int
}

// Build clusters db into an NB-Tree with no cancellation. See BuildContext.
func Build(db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Tree, error) {
	return BuildContext(context.Background(), db, m, opt, rng)
}

// BuildContext clusters db into an NB-Tree. rng drives the random first
// pivot at every level; pass a seeded source for reproducible trees.
// Cancellation is checked at every cluster boundary and between distance
// chunks inside a partition; a cancelled build returns ctx.Err() with no
// partial tree.
func BuildContext(ctx context.Context, db *graph.Database, m metric.Metric, opt Options, rng *rand.Rand) (*Tree, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("nbtree: empty database")
	}
	ids := make([]graph.ID, db.Len())
	for i := range ids {
		ids[i] = graph.ID(i)
	}
	return BuildSubsetContext(ctx, db, m, ids, opt, rng)
}

// BuildSubsetContext clusters an arbitrary subset of db's graphs into an
// NB-Tree — a shard's contiguous ID range, say. The clustering machinery is
// identical to BuildContext (which is the full-subset special case); opt.VO
// only needs to cover the subset's IDs. The ids slice is not retained.
func BuildSubsetContext(ctx context.Context, db *graph.Database, m metric.Metric, ids []graph.ID, opt Options, rng *rand.Rand) (*Tree, error) {
	if opt.Branching < 2 {
		return nil, fmt.Errorf("nbtree: branching factor %d < 2", opt.Branching)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("nbtree: empty subset")
	}
	b := &builder{ctx: ctx, db: db, m: m, opt: opt, rng: rng}
	root, err := b.build(append([]graph.ID(nil), ids...))
	if err != nil {
		return nil, err
	}
	t := &Tree{root: root, stats: b.snapshotStats()}
	t.index(root, nil)
	t.stats.Nodes = len(t.nodes)
	for _, n := range t.nodes {
		if n.Leaf {
			t.stats.Leaves++
		}
	}
	return t, nil
}

// Root returns the root cluster (the whole database).
func (t *Tree) Root() *Node { return t.root }

// Nodes returns all nodes in DFS preorder; Node.Idx indexes this slice.
func (t *Tree) Nodes() []*Node { return t.nodes }

// Stats returns construction statistics.
func (t *Tree) Stats() BuildStats { return t.stats }

// Height returns the height of the tree (a single leaf has height 0).
func (t *Tree) Height() int { return height(t.root) }

func height(n *Node) int {
	h := 0
	for _, c := range n.Children {
		if ch := height(c) + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Bytes approximates the memory footprint of the tree structure (the
// NB-Tree component of the paper's storage cost analysis).
func (t *Tree) Bytes() int64 {
	// Node: idx + centroid + radius + diameter + size + leaf + child/parent
	// pointers.
	var bytes int64
	for _, n := range t.nodes {
		bytes += 64 + int64(len(n.Children))*8
	}
	return bytes
}

// VisitGraphs calls fn for every graph in n's subtree.
func (n *Node) VisitGraphs(fn func(graph.ID)) {
	if n.Leaf {
		fn(n.Centroid)
		return
	}
	for _, c := range n.Children {
		c.VisitGraphs(fn)
	}
}

// Graphs returns the graphs in n's subtree.
func (n *Node) Graphs() []graph.ID {
	out := make([]graph.ID, 0, n.Size)
	n.VisitGraphs(func(id graph.ID) { out = append(out, id) })
	return out
}

func (t *Tree) index(n *Node, parent *Node) {
	n.Idx = len(t.nodes)
	n.Parent = parent
	t.nodes = append(t.nodes, n)
	for _, c := range n.Children {
		t.index(c, n)
	}
}

type builder struct {
	ctx context.Context
	db  *graph.Database
	m   metric.Metric
	opt Options
	rng *rand.Rand
	// exact and pruned are atomic because partition's distance fills run on
	// a worker pool; the pruning decisions themselves depend only on state
	// each index owns, so both totals are deterministic for any worker count.
	exact, pruned atomic.Int64
}

func (b *builder) snapshotStats() BuildStats {
	return BuildStats{ExactDistances: b.exact.Load(), PrunedDistances: b.pruned.Load()}
}

// dist issues an exact distance computation and counts it.
func (b *builder) dist(a, c graph.ID) float64 {
	b.exact.Add(1)
	return b.m.Distance(a, c)
}

// partitionChunk sizes the parallel distance fills: clusters at or below it
// run inline, so the deep, small tail of the recursion pays no goroutine
// overhead.
const partitionChunk = 32

// build clusters ids into a node. len(ids) ≥ 1.
func (b *builder) build(ids []graph.ID) (*Node, error) {
	if err := b.ctx.Err(); err != nil {
		return nil, err
	}
	if len(ids) == 1 {
		return &Node{Centroid: ids[0], Size: 1, Leaf: true}, nil
	}
	pivots, assign, err := b.partition(ids)
	if err != nil {
		return nil, err
	}
	node := &Node{Size: len(ids), Centroid: pivots[0]}
	// Radius: the running maximum of (upper bounds on) member distances to
	// the centroid; Diameter: sum of the two largest (§6.4). Both are sound
	// upper bounds even when the vantage pruning skips exact computations.
	// This loop stays sequential: the pruning threshold is the running
	// maximum, a recurrence whose prune-or-compute outcomes feed the encoded
	// radius/diameter values, so reordering it would change the tree bytes.
	var largest, second float64
	for _, id := range ids {
		dc := b.centroidDistance(node.Centroid, id, largest)
		if dc > largest {
			largest, second = dc, largest
		} else if dc > second {
			second = dc
		}
	}
	node.Radius = largest
	node.Diameter = largest + second
	if len(pivots) == 1 {
		// Degenerate cluster: every member coincides with the pivot
		// (distance 0). Recursing would not shrink the cluster, so emit the
		// members directly as leaves.
		for _, id := range ids {
			node.Children = append(node.Children, &Node{Centroid: id, Size: 1, Leaf: true})
		}
		return node, nil
	}
	for p := range pivots {
		var sub []graph.ID
		for i, id := range ids {
			if assign[i] == p {
				sub = append(sub, id)
			}
		}
		if len(sub) == 0 {
			continue
		}
		child, err := b.build(sub)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	return node, nil
}

// centroidDistance returns d(centroid, id), skipping the exact computation
// when the vantage upper bound shows the distance cannot exceed the current
// largest (it then returns that upper bound, which is sound for radius and
// diameter maintenance because it only ever under-reports skipped members
// relative to the running maximum).
func (b *builder) centroidDistance(centroid, id graph.ID, currentLargest float64) float64 {
	if id == centroid {
		return 0
	}
	if b.opt.VO != nil {
		if ub := b.opt.VO.UpperBound(centroid, id); ub <= currentLargest {
			b.pruned.Add(1)
			return ub
		}
	}
	return b.dist(centroid, id)
}

// partition chooses up to b pivots farthest-first and assigns every id to
// its closest pivot. It returns the pivots and the assignment (an index into
// pivots for every id).
//
// Only the rng-driven first-pivot draw and the farthest-first argmax scans
// are sequential; the distance fills fan out over index ranges. Each index i
// is touched by exactly one worker per round and its prune/compute decision
// reads only minDist[i] from the previous round, so pivots, assignments, and
// both stats totals are identical for any worker count.
func (b *builder) partition(ids []graph.ID) (pivots []graph.ID, assign []int, err error) {
	k := b.opt.Branching
	if k > len(ids) {
		k = len(ids)
	}
	first := ids[b.rng.Intn(len(ids))]
	pivots = []graph.ID{first}
	assign = make([]int, len(ids))
	minDist := make([]float64, len(ids))
	err = pool.Ranges(b.ctx, len(ids), b.opt.Workers, partitionChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			minDist[i] = b.dist(first, ids[i])
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for len(pivots) < k {
		// Farthest-first: the next pivot maximizes distance to the closest
		// already-chosen pivot.
		best, bestD := -1, -1.0
		for i := range ids {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if bestD == 0 {
			break // all remaining graphs coincide with a pivot
		}
		p := ids[best]
		pIdx := len(pivots)
		pivots = append(pivots, p)
		err = pool.Ranges(b.ctx, len(ids), b.opt.Workers, partitionChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if minDist[i] == 0 {
					continue
				}
				// Vantage pruning: if even the lower bound cannot beat the
				// current closest pivot, skip the exact computation.
				if b.opt.VO != nil && b.opt.VO.LowerBound(p, ids[i]) >= minDist[i] {
					b.pruned.Add(1)
					continue
				}
				if d := b.dist(p, ids[i]); d < minDist[i] {
					minDist[i] = d
					assign[i] = pIdx
				}
			}
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return pivots, assign, nil
}

// Insert adds a newly appended database graph to the tree: it descends to
// the closest leaf-level cluster, appends a new leaf there, and maintains
// sound (possibly loosened) radius and diameter upper bounds along the
// path. Fan-out may temporarily exceed the build-time branching factor;
// rebuild periodically if insert volume is high. Not safe concurrently with
// reads.
func (t *Tree) Insert(id graph.ID, m metric.Metric) {
	n := t.root
	if n.Leaf {
		// Single-graph tree: grow a root cluster over both.
		old := n
		d := m.Distance(old.Centroid, id)
		newRoot := &Node{
			Centroid: old.Centroid,
			Radius:   d,
			Diameter: d,
			Size:     2,
		}
		oldLeaf := &Node{Centroid: old.Centroid, Size: 1, Leaf: true, Parent: newRoot}
		newLeaf := &Node{Centroid: id, Size: 1, Leaf: true, Parent: newRoot}
		newRoot.Children = []*Node{oldLeaf, newLeaf}
		t.root = newRoot
		t.nodes = nil
		t.index(newRoot, nil)
		t.stats.Nodes = len(t.nodes)
		t.stats.Leaves++
		return
	}
	for {
		d := m.Distance(n.Centroid, id)
		t.stats.ExactDistances++
		// Diameter first: new pairs are bounded by d + old radius.
		if ub := d + n.Radius; ub > n.Diameter {
			n.Diameter = ub
		}
		if d > n.Radius {
			n.Radius = d
		}
		n.Size++
		// Stop at a node whose children are leaves; otherwise descend into
		// the child cluster with the closest centroid.
		allLeaves := true
		var best *Node
		bestD := 0.0
		for _, c := range n.Children {
			if !c.Leaf {
				allLeaves = false
				dc := m.Distance(c.Centroid, id)
				t.stats.ExactDistances++
				if best == nil || dc < bestD {
					best, bestD = c, dc
				}
			}
		}
		if allLeaves || best == nil {
			leaf := &Node{Idx: len(t.nodes), Centroid: id, Size: 1, Leaf: true, Parent: n}
			n.Children = append(n.Children, leaf)
			t.nodes = append(t.nodes, leaf)
			t.stats.Nodes++
			t.stats.Leaves++
			return
		}
		n = best
	}
}

// Validate checks the structural invariants of the tree under metric m:
// every graph appears exactly once; every member of a cluster lies within
// Radius of the centroid; Diameter bounds every pairwise member distance;
// Size fields are consistent. Intended for tests; cost is O(n²) distances in
// the worst case, so call it on small trees.
func (t *Tree) Validate(db *graph.Database, m metric.Metric) error {
	seen := make(map[graph.ID]int)
	t.root.VisitGraphs(func(id graph.ID) { seen[id]++ })
	if len(seen) != db.Len() {
		return fmt.Errorf("nbtree: tree covers %d graphs, database has %d", len(seen), db.Len())
	}
	for id, c := range seen {
		if c != 1 {
			return fmt.Errorf("nbtree: graph %d appears %d times", id, c)
		}
	}
	for _, n := range t.nodes {
		if n.Leaf {
			if n.Size != 1 || len(n.Children) != 0 || n.Radius != 0 || n.Diameter != 0 {
				return fmt.Errorf("nbtree: malformed leaf %d", n.Idx)
			}
			continue
		}
		size := 0
		for _, c := range n.Children {
			size += c.Size
			if c.Parent != n {
				return fmt.Errorf("nbtree: node %d has wrong parent link", c.Idx)
			}
		}
		if size != n.Size {
			return fmt.Errorf("nbtree: node %d size %d != children sum %d", n.Idx, n.Size, size)
		}
		members := n.Graphs()
		for _, id := range members {
			if d := m.Distance(n.Centroid, id); d > n.Radius+1e-9 {
				return fmt.Errorf("nbtree: node %d: member %d at %v exceeds radius %v", n.Idx, id, d, n.Radius)
			}
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if d := m.Distance(members[i], members[j]); d > n.Diameter+1e-9 {
					return fmt.Errorf("nbtree: node %d: pair (%d,%d) at %v exceeds diameter %v",
						n.Idx, members[i], members[j], d, n.Diameter)
				}
			}
		}
	}
	return nil
}
