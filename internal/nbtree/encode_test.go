package nbtree

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestTreeEncodeRoundTrip(t *testing.T) {
	db, m := randDB(t, 60, 201)
	tree, err := Build(db, m, Options{Branching: 3}, rand.New(rand.NewSource(202)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatalf("ReadTree: %v", err)
	}
	if err := got.Validate(db, m); err != nil {
		t.Fatalf("reloaded tree invalid: %v", err)
	}
	if len(got.Nodes()) != len(tree.Nodes()) {
		t.Fatalf("node count %d, want %d", len(got.Nodes()), len(tree.Nodes()))
	}
	for i, n := range tree.Nodes() {
		g := got.Nodes()[i]
		if g.Centroid != n.Centroid || g.Radius != n.Radius || g.Diameter != n.Diameter ||
			g.Size != n.Size || g.Leaf != n.Leaf || g.Idx != n.Idx {
			t.Fatalf("node %d differs: %+v vs %+v", i, g, n)
		}
	}
	if got.Stats() != tree.Stats() {
		t.Errorf("stats differ: %+v vs %+v", got.Stats(), tree.Stats())
	}
	if got.Height() != tree.Height() {
		t.Errorf("height differs")
	}
}

func TestReadTreeErrors(t *testing.T) {
	if _, err := ReadTree(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTree(bytes.NewReader([]byte("not a tree at all"))); err == nil {
		t.Error("garbage accepted")
	}
}
