package nbtree

import (
	"math/rand"
	"testing"

	"graphrep/internal/graph"
	"graphrep/internal/metric"
	"graphrep/internal/vantage"
)

func randDB(t testing.TB, n int, seed int64) (*graph.Database, metric.Metric) {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		order := 2 + rng.Intn(7)
		b := graph.NewBuilder(order)
		for v := 0; v < order; v++ {
			b.AddVertex(graph.Label(rng.Intn(3)))
		}
		for u := 0; u < order; u++ {
			for v := u + 1; v < order; v++ {
				if rng.Float64() < 0.35 {
					b.AddEdge(u, v, 0)
				}
			}
		}
		g, err := b.Build(graph.ID(i))
		if err != nil {
			panic(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		panic(err)
	}
	return db, metric.NewCache(metric.Star(db))
}

func TestBuildValidates(t *testing.T) {
	db, m := randDB(t, 60, 1)
	for _, b := range []int{2, 4, 8} {
		tree, err := Build(db, m, Options{Branching: b}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("Build(b=%d): %v", b, err)
		}
		if err := tree.Validate(db, m); err != nil {
			t.Fatalf("Validate(b=%d): %v", b, err)
		}
		if tree.Root().Size != db.Len() {
			t.Errorf("root size = %d, want %d", tree.Root().Size, db.Len())
		}
		if tree.Stats().Leaves != db.Len() {
			t.Errorf("leaves = %d, want %d", tree.Stats().Leaves, db.Len())
		}
		if tree.Height() < 1 {
			t.Errorf("height = %d", tree.Height())
		}
		if tree.Bytes() <= 0 {
			t.Error("Bytes <= 0")
		}
	}
}

func TestBuildErrors(t *testing.T) {
	db, m := randDB(t, 5, 3)
	if _, err := Build(db, m, Options{Branching: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("branching=1 accepted")
	}
	empty, _ := graph.NewDatabase(nil)
	if _, err := Build(empty, m, Options{Branching: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty database accepted")
	}
}

func TestNodeIdxMatchesNodesSlice(t *testing.T) {
	db, m := randDB(t, 40, 4)
	tree, err := Build(db, m, Options{Branching: 3}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i, n := range tree.Nodes() {
		if n.Idx != i {
			t.Fatalf("node at %d has Idx %d", i, n.Idx)
		}
	}
	if tree.Nodes()[0] != tree.Root() {
		t.Error("root is not first node")
	}
}

func TestDuplicateGraphs(t *testing.T) {
	// All graphs identical: distance 0 everywhere. Construction must
	// terminate and produce a flat, valid tree.
	b := graph.NewBuilder(2)
	b.AddVertex(1)
	b.AddVertex(1)
	b.AddEdge(0, 1, 0)
	proto, err := b.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*graph.Graph, 10)
	graphs[0] = proto
	for i := 1; i < 10; i++ {
		g, err := proto.Clone(graph.ID(i)).Build(graph.ID(i))
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	db, err := graph.NewDatabase(graphs)
	if err != nil {
		t.Fatal(err)
	}
	m := metric.Star(db)
	tree, err := Build(db, m, Options{Branching: 3}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Validate(db, m); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Root().Radius != 0 || tree.Root().Diameter != 0 {
		t.Errorf("radius/diameter = %v/%v, want 0/0", tree.Root().Radius, tree.Root().Diameter)
	}
}

func TestSingletonDatabase(t *testing.T) {
	db, m := randDB(t, 1, 6)
	tree, err := Build(db, m, Options{Branching: 2}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !tree.Root().Leaf || tree.Height() != 0 {
		t.Errorf("singleton tree malformed: leaf=%v height=%d", tree.Root().Leaf, tree.Height())
	}
}

func TestVPAcceleratedBuildIsValidAndPrunes(t *testing.T) {
	db, base := randDB(t, 120, 7)
	rng := rand.New(rand.NewSource(8))
	vps, err := vantage.SelectVPs(db, base, 6, vantage.SelectMaxMin, rng)
	if err != nil {
		t.Fatalf("SelectVPs: %v", err)
	}
	vo, err := vantage.Build(db, base, vps)
	if err != nil {
		t.Fatalf("vantage.Build: %v", err)
	}
	counter := metric.NewCounter(base)
	tree, err := Build(db, counter, Options{Branching: 4, VO: vo}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Validate(db, base); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := tree.Stats()
	if st.PrunedDistances == 0 {
		t.Error("vantage pruning never fired")
	}
	if st.ExactDistances != counter.Count() {
		t.Errorf("stats exact = %d, counter = %d", st.ExactDistances, counter.Count())
	}
	// Unaccelerated build must do strictly more exact work.
	counter2 := metric.NewCounter(base)
	if _, err := Build(db, counter2, Options{Branching: 4}, rand.New(rand.NewSource(9))); err != nil {
		t.Fatalf("Build plain: %v", err)
	}
	if counter.Count() >= counter2.Count() {
		t.Errorf("VP build used %d distances, plain build %d; expected fewer", counter.Count(), counter2.Count())
	}
}

func TestVisitGraphsAndGraphs(t *testing.T) {
	db, m := randDB(t, 30, 10)
	tree, err := Build(db, m, Options{Branching: 3}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, n := range tree.Nodes() {
		g := n.Graphs()
		if len(g) != n.Size {
			t.Fatalf("node %d: Graphs len %d != Size %d", n.Idx, len(g), n.Size)
		}
	}
}

func TestConstructionCostScalesAsBLogB(t *testing.T) {
	// §6.4 cost analysis: O(|D|·b·log_b|D|) exact distances without VP
	// acceleration. Sanity-check the measured count is within a small factor.
	db, m := randDB(t, 200, 12)
	counter := metric.NewCounter(m)
	_, err := Build(db, counter, Options{Branching: 4}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	n := float64(db.Len())
	bound := n * 4 * 6 // log_4(200) ≈ 3.8, allow slack: farthest-first costs ~b per level
	if got := float64(counter.Count()); got > bound*4 {
		t.Errorf("construction used %v distances, loose bound %v", got, bound*4)
	}
}
