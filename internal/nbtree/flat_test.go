package nbtree

import (
	"math/rand"
	"reflect"
	"testing"

	"graphrep/internal/graph"
)

func buildTestTree(t *testing.T, n int, branching int) (*Tree, func() error) {
	t.Helper()
	db, m := randDB(t, n, 11)
	tree, err := Build(db, m, Options{Branching: branching}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree, func() error { return tree.Validate(db, m) }
}

func treesEqual(t *testing.T, a, b *Tree) {
	t.Helper()
	if len(a.Nodes()) != len(b.Nodes()) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes()), len(b.Nodes()))
	}
	for i := range a.Nodes() {
		na, nb := a.Nodes()[i], b.Nodes()[i]
		if na.Centroid != nb.Centroid || na.Radius != nb.Radius || na.Diameter != nb.Diameter ||
			na.Size != nb.Size || na.Leaf != nb.Leaf || len(na.Children) != len(nb.Children) {
			t.Fatalf("node %d differs: %+v vs %+v", i, na, nb)
		}
		for j := range na.Children {
			if na.Children[j].Idx != nb.Children[j].Idx {
				t.Fatalf("node %d child %d: idx %d vs %d", i, j, na.Children[j].Idx, nb.Children[j].Idx)
			}
		}
		pa, pb := -1, -1
		if na.Parent != nil {
			pa = na.Parent.Idx
		}
		if nb.Parent != nil {
			pb = nb.Parent.Idx
		}
		if pa != pb {
			t.Fatalf("node %d parent: %d vs %d", i, pa, pb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestFlattenRebuildRoundTrip(t *testing.T) {
	tree, _ := buildTestTree(t, 60, 4)
	flat := tree.Flatten()
	if flat.Len() != len(tree.Nodes()) {
		t.Fatalf("flat has %d nodes, tree has %d", flat.Len(), len(tree.Nodes()))
	}
	if flat.Stats() != tree.Stats() {
		t.Fatalf("stats: %+v vs %+v", flat.Stats(), tree.Stats())
	}
	if flat.Bytes() <= 0 {
		t.Error("Bytes <= 0")
	}
	treesEqual(t, tree, flat.Rebuild())
}

func TestFlattenPassesNewFlat(t *testing.T) {
	tree, _ := buildTestTree(t, 45, 3)
	f := tree.Flatten()
	g, err := NewFlat(f.Centroids, f.Parents, f.FirstChild, f.NextSibling, f.Sizes, f.Leaves, f.Radii, f.Diameters, f.stats)
	if err != nil {
		t.Fatalf("NewFlat rejected Flatten output: %v", err)
	}
	if !reflect.DeepEqual(f, g) {
		t.Fatal("NewFlat result differs from Flatten output")
	}
}

func TestFlattenAfterInsert(t *testing.T) {
	db, m := randDB(t, 50, 21)
	tree, err := Build(db, m, Options{Branching: 4}, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Simulate appended graphs: Insert places new leaves at the end of the
	// node slice (non-preorder), which the flat invariants must still accept.
	for id := 0; id < db.Len(); id += 7 {
		tree.Insert(graph.ID(id%db.Len()), m) // duplicate IDs are fine for structure checks
	}
	f := tree.Flatten()
	if _, err := NewFlat(f.Centroids, f.Parents, f.FirstChild, f.NextSibling, f.Sizes, f.Leaves, f.Radii, f.Diameters, f.stats); err != nil {
		t.Fatalf("NewFlat rejected post-insert tree: %v", err)
	}
	treesEqual(t, tree, f.Rebuild())
}

func TestNewFlatRejectsCorruption(t *testing.T) {
	tree, _ := buildTestTree(t, 30, 3)
	base := tree.Flatten()
	mutate := func(fn func(*Flat)) *Flat {
		f := &Flat{
			Centroids:   append([]graph.ID(nil), base.Centroids...),
			Parents:     append([]int32(nil), base.Parents...),
			FirstChild:  append([]int32(nil), base.FirstChild...),
			NextSibling: append([]int32(nil), base.NextSibling...),
			Sizes:       append([]int32(nil), base.Sizes...),
			Leaves:      append([]byte(nil), base.Leaves...),
			Radii:       append([]float64(nil), base.Radii...),
			Diameters:   append([]float64(nil), base.Diameters...),
			stats:       base.stats,
		}
		fn(f)
		return f
	}
	leafIdx := int32(-1)
	for i := range base.Leaves {
		if base.Leaves[i] == 1 {
			leafIdx = int32(i)
			break
		}
	}
	cases := map[string]*Flat{
		"short array":     mutate(func(f *Flat) { f.Sizes = f.Sizes[:len(f.Sizes)-1] }),
		"root has parent": mutate(func(f *Flat) { f.Parents[0] = 2 }),
		"forward parent":  mutate(func(f *Flat) { f.Parents[1] = 1 }),
		"backward child":  mutate(func(f *Flat) { f.FirstChild[0] = 0 }),
		"child oob":       mutate(func(f *Flat) { f.FirstChild[0] = int32(f.Len()) }),
		"sibling oob":     mutate(func(f *Flat) { f.NextSibling[1] = int32(f.Len() + 5) }),
		"leaf with child": mutate(func(f *Flat) { f.FirstChild[leafIdx] = int32(f.Len() - 1) }),
		"leaf flag junk":  mutate(func(f *Flat) { f.Leaves[leafIdx] = 7 }),
		"leaf wrong size": mutate(func(f *Flat) { f.Sizes[leafIdx] = 3 }),
		"size mismatch":   mutate(func(f *Flat) { f.Sizes[0]++ }),
		"orphaned node":   mutate(func(f *Flat) { f.NextSibling[int32(f.FirstChild[0])] = -1; f.Leaves[0] = 0 }),
		"childless inner": mutate(func(f *Flat) { f.Leaves[leafIdx] = 0 }),
		"empty":           {Centroids: nil},
	}
	for name, f := range cases {
		if _, err := NewFlat(f.Centroids, f.Parents, f.FirstChild, f.NextSibling, f.Sizes, f.Leaves, f.Radii, f.Diameters, f.stats); err == nil {
			t.Errorf("%s: NewFlat accepted corrupt tree", name)
		}
	}
}

func TestNewFlatRecomputesStats(t *testing.T) {
	tree, _ := buildTestTree(t, 25, 3)
	f := tree.Flatten()
	lied := f.stats
	lied.Nodes = 1
	lied.Leaves = 99
	g, err := NewFlat(f.Centroids, f.Parents, f.FirstChild, f.NextSibling, f.Sizes, f.Leaves, f.Radii, f.Diameters, lied)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().Nodes != f.Len() || g.Stats().Leaves != tree.Stats().Leaves {
		t.Fatalf("stats not recomputed: %+v", g.Stats())
	}
}
